file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cleaning.dir/bench_table3_cleaning.cc.o"
  "CMakeFiles/bench_table3_cleaning.dir/bench_table3_cleaning.cc.o.d"
  "bench_table3_cleaning"
  "bench_table3_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
