#include "util/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <limits>

#include "obs/metrics.h"
#include "util/cancellation.h"
#include "util/string_util.h"

namespace semdrift {

namespace {

/// Pre-registered handles: top-level parallel jobs pay one relaxed atomic
/// add per counter, never a registry lookup.
struct PoolMetrics {
  MetricsRegistry::Counter jobs;
  MetricsRegistry::Counter tasks;
  MetricsRegistry::Histogram job_ns;
};

PoolMetrics& GetPoolMetrics() {
  static PoolMetrics metrics{
      GlobalMetrics().RegisterCounter("pool.jobs"),
      GlobalMetrics().RegisterCounter("pool.tasks"),
      GlobalMetrics().RegisterHistogram("pool.job_ns", LatencyBucketsNs())};
  return metrics;
}

/// Times one top-level job; the destructor records even when a loop body
/// throws and the exception propagates to the submitter.
struct JobTimer {
  bool active = false;
  std::chrono::steady_clock::time_point start;

  explicit JobTimer(bool top_level, size_t n) : active(top_level) {
    if (!active) return;
    PoolMetrics& metrics = GetPoolMetrics();
    metrics.jobs.Add();
    metrics.tasks.Add(n);
    start = std::chrono::steady_clock::now();
  }
  ~JobTimer() {
    if (!active) return;
    auto elapsed = std::chrono::steady_clock::now() - start;
    GetPoolMetrics().job_ns.Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
};

/// Set while a thread is executing loop bodies (worker or caller); nested
/// parallel regions detect it and run inline instead of re-entering the pool.
thread_local bool t_in_parallel_region = false;

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool>* GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return &pool;
}

int g_thread_override = 0;  // 0 = auto (env / hardware).

int EnvThreads() {
  static int cached = [] {
    const char* env = std::getenv("SEMDRIFT_THREADS");
    if (env == nullptr || *env == '\0') return 0;
    uint64_t value = 0;
    if (!ParseUint64(env, &value) || value == 0 ||
        value > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
      return 0;  // Malformed values fall back to auto rather than crash.
    }
    return static_cast<int>(value);
  }();
  return cached;
}

}  // namespace

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int GlobalThreadCount() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_thread_override > 0) return g_thread_override;
  int env = EnvThreads();
  return env > 0 ? env : HardwareThreads();
}

void SetGlobalThreadCount(int num_threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_thread_override = num_threads > 0 ? num_threads : 0;
}

uint64_t TaskSeed(uint64_t base_seed, uint64_t task_index) {
  // SplitMix64 finalizer over (seed, index): decorrelates adjacent indices
  // so per-task Rng streams are independent regardless of scheduling.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct ThreadPool::Job {
  const std::function<void(size_t)>* body = nullptr;
  size_t n = 0;
  /// The submitting thread's cancellation token, installed in every worker
  /// for the job's duration — cooperative cancellation of a guarded stage
  /// reaches its parallel sub-work (e.g. per-tree forest fits).
  const CancellationToken* cancellation = nullptr;
  std::atomic<size_t> next{0};
  /// Threads currently inside RunJob (caller included).
  std::atomic<int> active{0};

  std::mutex err_mu;
  size_t first_error_index = std::numeric_limits<size_t>::max();
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunJob(Job* job) {
  bool was_in_region = t_in_parallel_region;
  t_in_parallel_region = true;
  // No-op on the submitting thread (its token is already current); forwards
  // the token to pool workers.
  ScopedCancellation forward_token(job->cancellation);
  for (;;) {
    size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) break;
    try {
      (*job->body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->err_mu);
      if (i < job->first_error_index) {
        job->first_error_index = i;
        job->error = std::current_exception();
      }
      // Abandon unclaimed indices; in-flight ones finish normally.
      job->next.store(job->n, std::memory_order_relaxed);
    }
  }
  t_in_parallel_region = was_in_region;
}

void ThreadPool::WorkerLoop() {
  uint64_t last_seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutting_down_ ||
               (current_job_ != nullptr && job_generation_ != last_seen);
      });
      if (shutting_down_) return;
      last_seen = job_generation_;
      job = current_job_;
      job->active.fetch_add(1, std::memory_order_relaxed);
    }
    RunJob(job.get());
    {
      std::lock_guard<std::mutex> lock(mu_);
      job->active.fetch_sub(1, std::memory_order_relaxed);
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  JobTimer timer(!t_in_parallel_region, n);
  // Serial fast path: single-thread pool, single task, or nested region.
  if (workers_.empty() || n == 1 || t_in_parallel_region) {
    bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    struct RegionGuard {
      bool restore;
      ~RegionGuard() { t_in_parallel_region = restore; }
    } guard{was_in_region};
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = &body;
  job->n = n;
  job->cancellation = CancellationToken::Current();
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_job_ = job;
    ++job_generation_;
  }
  work_cv_.notify_all();

  RunJob(job.get());  // The calling thread participates.

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->next.load(std::memory_order_relaxed) >= job->n &&
             job->active.load(std::memory_order_relaxed) == 0;
    });
    current_job_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  // Resolve the desired width, (re)building the shared pool when the global
  // control changed since the last call. Nested calls never reach the pool.
  if (t_in_parallel_region) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    int want = g_thread_override > 0
                   ? g_thread_override
                   : (EnvThreads() > 0 ? EnvThreads() : HardwareThreads());
    std::unique_ptr<ThreadPool>* slot = GlobalPoolSlot();
    if (*slot == nullptr || (*slot)->num_threads() != want) {
      slot->reset();  // Join the old pool before replacing it.
      *slot = std::make_unique<ThreadPool>(want);
    }
    pool = slot->get();
  }
  pool->ParallelFor(n, body);
}

}  // namespace semdrift
