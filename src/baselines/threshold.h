#ifndef SEMDRIFT_BASELINES_THRESHOLD_H_
#define SEMDRIFT_BASELINES_THRESHOLD_H_

#include <vector>

namespace semdrift {

/// Learns the removal threshold the paper grants the ranking baselines
/// ("with well-learned thresholds", Sec. 5.3): given (score, is_error)
/// samples, returns the threshold t maximizing the F1 of "remove everything
/// scoring below t". Returns -infinity when removal can never help (no
/// errors in the sample).
double LearnRemovalThreshold(std::vector<std::pair<double, bool>> scored);

}  // namespace semdrift

#endif  // SEMDRIFT_BASELINES_THRESHOLD_H_
