// Reproduces Fig. 2: frequency distributions of the instances *triggered by*
// DPs vs non-DPs under the "animal" concept, against the concept's average
// (iteration-1) distribution. Shape to match: non-DP-triggered
// distributions resemble AVG; DP-triggered ones concentrate on instances
// outside the core.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "dp/features.h"
#include "dp/seed_labeling.h"
#include "util/table_writer.h"

using namespace semdrift;

int main() {
  auto experiment = bench::BuildBenchExperiment();
  KnowledgeBase kb = experiment->Extract();
  ConceptId animal = experiment->world().FindConcept("animal");

  // Reference instances: the concept's 12 most frequent iteration-1
  // instances plus 4 frequent foreign (drifted) instances — the x-axis of
  // Fig. 2 (Horse..Chimpanzee | Beef..Meat in the paper).
  auto core = kb.Iter1InstancesOf(animal);
  std::sort(core.begin(), core.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<InstanceId> axis;
  for (size_t i = 0; i < core.size() && axis.size() < 12; ++i) {
    axis.push_back(core[i].first);
  }
  // Foreign columns: most frequent live instances that are NOT true members.
  std::vector<std::pair<int, InstanceId>> foreign;
  for (InstanceId e : kb.LiveInstancesOf(animal)) {
    if (experiment->truth().PairCorrect(IsAPair{animal, e})) continue;
    foreign.emplace_back(kb.Count(IsAPair{animal, e}), e);
  }
  std::sort(foreign.rbegin(), foreign.rend());
  for (size_t i = 0; i < foreign.size() && i < 4; ++i) axis.push_back(foreign[i].second);

  // Panels: the AVG distribution + per-trigger distributions for up to 4
  // ground-truth non-DPs and 2 Intentional DPs (like CAT/DOG/... vs CHICKEN).
  std::vector<std::pair<std::string, std::unordered_map<InstanceId, int>>> panels;
  std::unordered_map<InstanceId, int> avg;
  for (const auto& [e, count] : core) avg[e] = count;
  panels.emplace_back("AVG", std::move(avg));
  int non_dps_shown = 0;
  int dps_shown = 0;
  for (InstanceId e : kb.LiveInstancesOf(animal)) {
    auto sub = kb.SubInstancesOf(IsAPair{animal, e});
    if (sub.size() < 3) continue;
    DpClass label = experiment->truth().DpLabelOf(kb, IsAPair{animal, e});
    if (label == DpClass::kNonDP && non_dps_shown < 4) {
      panels.emplace_back("non-DP:" + experiment->world().InstanceName(e),
                          std::move(sub));
      ++non_dps_shown;
    } else if (label == DpClass::kIntentionalDP && dps_shown < 2) {
      panels.emplace_back("DP:" + experiment->world().InstanceName(e),
                          std::move(sub));
      ++dps_shown;
    }
    if (non_dps_shown == 4 && dps_shown == 2) break;
  }

  TableWriter table(
      "Fig. 2: normalized trigger-target distributions under 'animal' "
      "(columns: top core instances then top drifted-in foreign instances)");
  std::vector<std::string> header{"trigger"};
  for (InstanceId e : axis) header.push_back(experiment->world().InstanceName(e));
  header.push_back("[other]");
  table.SetHeader(header);
  for (const auto& [name, distribution] : panels) {
    double total = 0.0;
    for (const auto& [e, count] : distribution) {
      (void)e;
      total += count;
    }
    std::vector<double> values;
    double covered = 0.0;
    for (InstanceId e : axis) {
      auto it = distribution.find(e);
      double share = it == distribution.end() || total == 0
                         ? 0.0
                         : static_cast<double>(it->second) / total;
      covered += share;
      values.push_back(share);
    }
    values.push_back(std::max(0.0, 1.0 - covered));
    table.AddRow(name, values, 3);
  }
  table.Print(std::cout);
  (void)table.WriteCsv("bench_fig2.csv");
  return 0;
}
