// Reproduces Table 2: precision of the top-k instances under the evaluation
// concepts for the three ranking models (Frequency, PageRank, Random Walk).
// The paper reports p@100/1000/2000 over much larger concepts; the shape to
// match is the ordering Frequency < PageRank < RandomWalk at every k.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "eval/metrics.h"
#include "rank/scorers.h"
#include "util/table_writer.h"

using namespace semdrift;

namespace {

/// Average p@k over the evaluation concepts for one ranking model.
double AveragePrecisionAtK(const Experiment& experiment, const KnowledgeBase& kb,
                           RankModel model, size_t k) {
  double total = 0.0;
  int concepts = 0;
  for (ConceptId c : experiment.EvalConcepts()) {
    auto scores = ScoreConcept(kb, c, model);
    if (scores.empty()) continue;
    std::vector<std::pair<double, InstanceId>> ranked;
    ranked.reserve(scores.size());
    for (const auto& [e, s] : scores) ranked.emplace_back(s, e);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second.value < b.second.value;  // Deterministic ties.
    });
    std::vector<InstanceId> order;
    order.reserve(ranked.size());
    for (const auto& [s, e] : ranked) {
      (void)s;
      order.push_back(e);
    }
    total += PrecisionAtK(experiment.truth(), c, order, k);
    ++concepts;
  }
  return concepts > 0 ? total / concepts : 0.0;
}

}  // namespace

int main() {
  auto experiment = bench::BuildBenchExperiment();
  KnowledgeBase kb = experiment->Extract();

  const size_t ks[] = {50, 100, 200};
  TableWriter table("Table 2: precision of top-k instances per ranking model");
  table.SetHeader({"Ranking Model", "p@50", "p@100", "p@200"});
  struct Row {
    const char* name;
    RankModel model;
  };
  const Row rows[] = {{"Frequency", RankModel::kFrequency},
                      {"PageRank", RankModel::kPageRank},
                      {"Random Walk", RankModel::kRandomWalk}};
  for (const Row& row : rows) {
    std::vector<double> values;
    for (size_t k : ks) {
      values.push_back(AveragePrecisionAtK(*experiment, kb, row.model, k));
    }
    table.AddRow(row.name, values, 4);
  }
  table.Print(std::cout);
  (void)table.WriteCsv("bench_table2.csv");
  return 0;
}
