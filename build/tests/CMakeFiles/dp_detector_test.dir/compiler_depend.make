# Empty compiler generated dependencies file for dp_detector_test.
# This may be replaced when dependencies are built.
