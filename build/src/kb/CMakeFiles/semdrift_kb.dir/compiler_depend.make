# Empty compiler generated dependencies file for semdrift_kb.
# This may be replaced when dependencies are built.
