#include "corpus/serialization.h"

#include <cstdlib>
#include <fstream>
#include <unordered_map>

#include "util/string_util.h"

namespace semdrift {

namespace {

constexpr char kWorldHeader[] = "semdrift-world\tv1";
constexpr char kCorpusHeader[] = "semdrift-corpus\tv1";

}  // namespace

Status SaveWorld(const World& world, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << kWorldHeader << "\n";
  for (size_t ci = 0; ci < world.num_concepts(); ++ci) {
    out << "C\t" << world.ConceptName(ConceptId(static_cast<uint32_t>(ci))) << "\n";
  }
  for (size_t ei = 0; ei < world.num_instances(); ++ei) {
    out << "I\t" << world.InstanceName(InstanceId(static_cast<uint32_t>(ei))) << "\n";
  }
  for (size_t ci = 0; ci < world.num_concepts(); ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    const auto& members = world.Members(c);
    const auto& weights = world.MemberWeights(c);
    for (size_t i = 0; i < members.size(); ++i) {
      out << "M\t" << world.ConceptName(c) << "\t" << world.InstanceName(members[i])
          << "\t" << FormatDouble(weights[i], 9) << "\t"
          << (world.IsVerified(c, members[i]) ? 1 : 0) << "\n";
    }
    for (ConceptId other : world.Confusables(c)) {
      out << "X\t" << world.ConceptName(c) << "\t" << world.ConceptName(other) << "\n";
    }
    ConceptId twin = world.SimilarTwin(c);
    if (twin.valid() && twin.value > c.value) {
      out << "T\t" << world.ConceptName(c) << "\t" << world.ConceptName(twin) << "\n";
    }
  }
  for (const auto& polyseme : world.polysemes()) {
    out << "P\t" << world.InstanceName(polyseme.instance) << "\t"
        << world.ConceptName(polyseme.home) << "\t"
        << world.ConceptName(polyseme.guest) << "\n";
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<World> LoadWorld(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != kWorldHeader) {
    return Status::InvalidArgument(path + ": not a semdrift world file");
  }
  World::Builder builder;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, '\t');
    const std::string& tag = fields[0];
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": " + why);
    };
    if (tag == "C" && fields.size() == 2) {
      builder.AddConcept(fields[1]);
    } else if (tag == "I" && fields.size() == 2) {
      builder.AddInstance(fields[1]);
    } else if (tag == "M" && fields.size() == 5) {
      ConceptId c = builder.AddConcept(fields[1]);
      InstanceId e = builder.AddInstance(fields[2]);
      builder.AddMembership(c, e, std::atof(fields[3].c_str()));
      if (fields[4] == "1") builder.MarkVerified(c, e);
    } else if (tag == "X" && fields.size() == 3) {
      builder.AddConfusable(builder.AddConcept(fields[1]),
                            builder.AddConcept(fields[2]));
    } else if (tag == "T" && fields.size() == 3) {
      builder.SetSimilarTwins(builder.AddConcept(fields[1]),
                              builder.AddConcept(fields[2]));
    } else if (tag == "P" && fields.size() == 4) {
      builder.AddPolyseme(builder.AddInstance(fields[1]),
                          builder.AddConcept(fields[2]),
                          builder.AddConcept(fields[3]));
    } else {
      return fail("unrecognized record '" + tag + "' with " +
                  std::to_string(fields.size()) + " fields");
    }
  }
  return builder.Build();
}

Status SaveCorpus(const World& world, const Corpus& corpus, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << kCorpusHeader << "\n";
  for (const Sentence& sentence : corpus.sentences.sentences()) {
    const SentenceTruth& truth = corpus.TruthOf(sentence.id);
    out << "S\t" << static_cast<int>(truth.kind) << "\t"
        << world.ConceptName(truth.true_concept) << "\t"
        << (truth.polyseme.valid() ? world.InstanceName(truth.polyseme) : "-");
    out << "\t";
    for (size_t i = 0; i < sentence.candidate_concepts.size(); ++i) {
      if (i > 0) out << "|";
      out << world.ConceptName(sentence.candidate_concepts[i]);
    }
    out << "\t";
    for (size_t i = 0; i < sentence.candidate_instances.size(); ++i) {
      if (i > 0) out << "|";
      out << world.InstanceName(sentence.candidate_instances[i]);
    }
    out << "\t" << sentence.text << "\n";
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Corpus> LoadCorpus(const World& world, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != kCorpusHeader) {
    return Status::InvalidArgument(path + ": not a semdrift corpus file");
  }
  Corpus corpus;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, '\t');
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": " + why);
    };
    if (fields.size() != 7 || fields[0] != "S") return fail("malformed record");
    SentenceTruth truth;
    truth.kind = static_cast<SentenceKind>(std::atoi(fields[1].c_str()));
    truth.true_concept = world.FindConcept(fields[2]);
    if (!truth.true_concept.valid()) return fail("unknown concept " + fields[2]);
    if (fields[3] != "-") {
      truth.polyseme = world.FindInstance(fields[3]);
      if (!truth.polyseme.valid()) return fail("unknown instance " + fields[3]);
    }
    Sentence sentence;
    for (const std::string& name : Split(fields[4], '|')) {
      ConceptId c = world.FindConcept(name);
      if (!c.valid()) return fail("unknown concept " + name);
      sentence.candidate_concepts.push_back(c);
    }
    for (const std::string& name : Split(fields[5], '|')) {
      InstanceId e = world.FindInstance(name);
      if (!e.valid()) return fail("unknown instance " + name);
      sentence.candidate_instances.push_back(e);
    }
    sentence.text = fields[6];
    corpus.sentences.Add(std::move(sentence));
    corpus.truths.push_back(truth);
  }
  return corpus;
}

Status ExportTaxonomyTsv(const KnowledgeBase& kb, const World& world,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "concept\tinstance\tsupport\titer1_support\n";
  for (size_t ci = 0; ci < world.num_concepts(); ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    for (InstanceId e : kb.LiveInstancesOf(c)) {
      if (e.value >= world.num_instances()) continue;  // Open-class discovery.
      IsAPair pair{c, e};
      out << world.ConceptName(c) << "\t" << world.InstanceName(e) << "\t"
          << kb.Count(pair) << "\t" << kb.Iter1Count(pair) << "\n";
    }
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace semdrift
