// Reproduces Table 3: cleaning-quality comparison of MEx, TCh, PRDual-Rank,
// RW-Rank and DP Cleaning on the same knowledge base (perror / rerror /
// pcorrect / rcorrect over the 20 evaluation concepts). Shape to match: MEx
// and TCh precise but low recall; the ranking baselines higher recall but
// low precision; DP Cleaning the best overall balance.

#include <iostream>
#include <unordered_set>

#include "baselines/cleaners.h"
#include "baselines/threshold.h"
#include "bench_common.h"
#include "dp/cleaner.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "util/table_writer.h"

using namespace semdrift;

namespace {

CleaningMetrics Evaluate(const Experiment& experiment,
                         const std::vector<IsAPair>& population,
                         const std::vector<IsAPair>& removed_list) {
  std::unordered_set<IsAPair, IsAPairHash> removed(removed_list.begin(),
                                                   removed_list.end());
  return EvaluateCleaning(experiment.truth(), population, removed);
}

/// Learns the removal threshold for a score map the way the paper grants the
/// ranking baselines their "well-learned thresholds": against labeled data
/// (our ground truth plays the role of their manual labels).
std::vector<IsAPair> ThresholdBaseline(
    const Experiment& experiment,
    const std::unordered_map<IsAPair, double, IsAPairHash>& scores) {
  std::vector<std::pair<double, bool>> scored;
  scored.reserve(scores.size());
  for (const auto& [pair, score] : scores) {
    scored.emplace_back(score, !experiment.truth().PairCorrect(pair));
  }
  return ThresholdClean(scores, LearnRemovalThreshold(std::move(scored)));
}

}  // namespace

int main() {
  auto experiment = bench::BuildBenchExperiment();
  std::vector<ConceptId> scope = experiment->EvalConcepts();

  TableWriter table("Table 3: comparing cleaning performance with other methods");
  table.SetHeader({"Cleaning Method", "perror", "rerror", "pcorrect", "rcorrect"});

  // Shared pre-cleaning state (re-extracted per method; deterministic).
  KnowledgeBase base_kb = experiment->Extract();
  std::vector<IsAPair> population = LivePairsOf(base_kb, scope);
  {
    CleaningMetrics m = Evaluate(*experiment, population, {});
    table.AddRow({"Before Cleaning", "-", "-", FormatDouble(m.pcorr, 4),
                  FormatDouble(m.rcorr, 4)});
  }

  // MEx.
  {
    MutexIndex mutex(base_kb, experiment->world().num_concepts());
    auto removed = MutualExclusionClean(base_kb, mutex, scope);
    CleaningMetrics m = Evaluate(*experiment, population, removed);
    table.AddRow("MEx", {m.perror, m.rerror, m.pcorr, m.rcorr});
  }

  // TCh (simulated NER type checking).
  {
    TypeOracle oracle(&experiment->world(), TypeOracle::Options{});
    auto removed = TypeCheckClean(base_kb, oracle, scope);
    CleaningMetrics m = Evaluate(*experiment, population, removed);
    table.AddRow("TCh", {m.perror, m.rerror, m.pcorr, m.rcorr});
  }

  // PRDual-Rank.
  {
    auto scores = PrDualRankScores(base_kb, scope);
    auto removed = ThresholdBaseline(*experiment, scores);
    CleaningMetrics m = Evaluate(*experiment, population, removed);
    table.AddRow("PRDual-Rank", {m.perror, m.rerror, m.pcorr, m.rcorr});
  }

  // RW-Rank.
  {
    auto scores = RwRankScores(base_kb, scope);
    auto removed = ThresholdBaseline(*experiment, scores);
    CleaningMetrics m = Evaluate(*experiment, population, removed);
    table.AddRow("RW-Rank", {m.perror, m.rerror, m.pcorr, m.rcorr});
  }

  // DP Cleaning (mutating; uses a fresh extraction).
  {
    KnowledgeBase kb = experiment->Extract();
    CleanerOptions options;
    DpCleaner cleaner(&experiment->corpus().sentences,
                      experiment->MakeVerifiedSource(),
                      experiment->world().num_concepts(), options);
    cleaner.Clean(&kb, scope);
    std::vector<IsAPair> removed;
    for (const IsAPair& pair : population) {
      if (!kb.Contains(pair)) removed.push_back(pair);
    }
    CleaningMetrics m = Evaluate(*experiment, population, removed);
    table.AddRow("DP Cleaning", {m.perror, m.rerror, m.pcorr, m.rcorr});
  }

  table.Print(std::cout);
  (void)table.WriteCsv("bench_table3.csv");
  return 0;
}
