# Empty dependencies file for bench_table2_ranking.
# This may be replaced when dependencies are built.
