#include "util/framed_file.h"

#include <cstdio>

#include "util/string_util.h"

namespace semdrift {

namespace {

constexpr char kFooterPrefix[] = "#crc32\t";

std::string HeaderLine(std::string_view tag, int version) {
  return std::string(tag) + "\tv" + std::to_string(version);
}

}  // namespace

FramedWriter::FramedWriter(const std::string& path, std::string_view tag,
                           int version)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) {
    status_ = Status::IOError("cannot open " + path);
    return;
  }
  Write(HeaderLine(tag, version));
  Write("\n");
}

void FramedWriter::Write(std::string_view bytes) {
  if (!status_.ok()) return;
  crc_.Update(bytes);
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out_) status_ = Status::IOError("write failed for " + path_);
}

void FramedWriter::WriteLine(std::string_view line) {
  Write(line);
  Write("\n");
}

Status FramedWriter::Close() {
  if (closed_) return status_;
  closed_ = true;
  if (!status_.ok()) return status_;
  char footer[32];
  std::snprintf(footer, sizeof(footer), "%s%08x\n", kFooterPrefix, crc_.value());
  out_ << footer;
  out_.flush();
  if (!out_) status_ = Status::IOError("write failed for " + path_);
  return status_;
}

Result<FramedFile> ReadFramedFile(const std::string& path, std::string_view tag,
                                  int max_version, int min_checksum_version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);

  FramedFile file;
  Crc32 crc;
  std::string line;
  size_t line_number = 0;
  size_t offset = 0;

  if (!std::getline(in, line)) {
    return Status::InvalidArgument(path + ": empty file, expected '" +
                                   HeaderLine(tag, 1) + "'-style header");
  }
  ++line_number;
  // Header: "<tag>\tv<N>".
  std::string expected_prefix = std::string(tag) + "\tv";
  int64_t version = 0;
  if (!StartsWith(line, expected_prefix) ||
      !ParseIntInRange(std::string_view(line).substr(expected_prefix.size()), 1,
                       max_version, &version)) {
    return Status::InvalidArgument(path + ": not a " + std::string(tag) +
                                   " file (bad header '" + line + "')");
  }
  file.version = static_cast<int>(version);
  crc.Update(line);
  crc.Update("\n");
  offset += line.size() + 1;

  bool saw_footer = false;
  while (std::getline(in, line)) {
    ++line_number;
    size_t line_offset = offset;
    offset += line.size() + 1;
    if (StartsWith(line, kFooterPrefix)) {
      file.checksum_present = true;
      uint64_t stored = 0;
      std::string_view hex = std::string_view(line).substr(sizeof(kFooterPrefix) - 1);
      bool parsed = hex.size() == 8;
      uint32_t value = 0;
      if (parsed) {
        for (char c : hex) {
          int digit;
          if (c >= '0' && c <= '9') digit = c - '0';
          else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
          else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
          else { parsed = false; break; }
          value = (value << 4) | static_cast<uint32_t>(digit);
        }
        stored = value;
      }
      file.checksum_ok = parsed && stored == crc.value();
      saw_footer = true;
      continue;
    }
    if (saw_footer) {
      // Payload after the footer: something appended or spliced bytes into
      // a sealed file. Whatever it is, the file is not what was written.
      file.checksum_ok = false;
      continue;
    }
    crc.Update(line);
    crc.Update("\n");
    if (line.empty()) continue;
    file.lines.push_back(line);
    file.line_numbers.push_back(line_number);
    file.line_offsets.push_back(line_offset);
  }
  if (in.bad()) return Status::IOError("read failed for " + path);
  file.bytes_read = offset;
  if (file.version >= min_checksum_version && !saw_footer) file.truncated = true;
  return file;
}

}  // namespace semdrift
