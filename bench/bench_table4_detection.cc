// Reproduces Table 4: DP-detection precision/recall/F1 for the detector
// ladder (Ad-hoc 1-4, Supervised random forest, Semi-Supervised,
// Semi-Supervised Multi-Task). Following the paper's protocol, evaluation
// runs over a labeled sample containing every ground-truth DP plus a
// proportionate draw of non-DPs (the paper's annotators labeled 3,405 DPs
// vs 4,408 non-DPs — a curated, near-balanced set); plain drifting errors
// (symptoms, not causes) are outside the DP/non-DP label space.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "dp/detector.h"
#include "eval/metrics.h"
#include "util/rng.h"
#include "util/table_writer.h"

using namespace semdrift;

int main() {
  auto experiment = bench::BuildBenchExperiment();
  KnowledgeBase kb = experiment->Extract();
  // Detection runs over the 20 evaluation concepts plus a band of tail
  // concepts with thin training data — the regime where the paper's
  // multi-task sharing pays off (most of its millions of concepts have
  // little or no labeled data).
  std::vector<ConceptId> scope = experiment->EvalConcepts();
  for (uint32_t ci = 60; ci < 120 && ci < experiment->world().num_concepts(); ++ci) {
    scope.push_back(ConceptId(ci));
  }

  MutexIndex mutex(kb, experiment->world().num_concepts());
  ScoreCache scores(&kb, RankModel::kRandomWalk);
  FeatureExtractor features(&kb, &mutex, &scores);
  SeedLabeler seeds(&kb, &mutex, experiment->MakeVerifiedSource());
  TrainingData data = CollectTrainingData(kb, &features, seeds, scope);

  // Build the evaluation sample: all DPs + ~1.3x as many sampled non-DPs
  // (the paper's labeled-set ratio).
  struct Sample {
    size_t concept_index;
    size_t row;
    DpClass truth;
  };
  std::vector<Sample> dps;
  std::vector<Sample> non_dps;
  for (size_t ci = 0; ci < data.size(); ++ci) {
    for (size_t i = 0; i < data[ci].instances.size(); ++i) {
      DpClass g = experiment->truth().DpLabelOf(
          kb, IsAPair{data[ci].concept_id, data[ci].instances[i]});
      if (g == DpClass::kUnlabeled) continue;  // Plain error: not labeled.
      if (g == DpClass::kNonDP) {
        non_dps.push_back(Sample{ci, i, g});
      } else {
        dps.push_back(Sample{ci, i, g});
      }
    }
  }
  Rng rng(2014);
  rng.Shuffle(&non_dps);
  size_t keep = std::min(non_dps.size(), dps.size() * 13 / 10);
  non_dps.resize(keep);
  std::vector<Sample> sample = dps;
  sample.insert(sample.end(), non_dps.begin(), non_dps.end());
  std::cout << "labeled evaluation sample: " << dps.size() << " DPs, "
            << non_dps.size() << " non-DPs\n";

  TableWriter table("Table 4: comparing the effectiveness of DP detection methods");
  table.SetHeader({"Detection Method", "Precision", "Recall", "F1"});

  struct Entry {
    const char* name;
    DetectorKind kind;
  };
  const Entry entries[] = {
      {"Ad-hoc 1 (f1)", DetectorKind::kAdHoc1},
      {"Ad-hoc 2 (f2)", DetectorKind::kAdHoc2},
      {"Ad-hoc 3 (f3)", DetectorKind::kAdHoc3},
      {"Ad-hoc 4 (f4)", DetectorKind::kAdHoc4},
      {"Supervised", DetectorKind::kSupervised},
      {"Semi-Supervised", DetectorKind::kSemiSupervised},
      {"Semi-Supervised Multi-Task", DetectorKind::kSemiSupervisedMultiTask},
  };
  DetectorTrainOptions options;
  for (const Entry& entry : entries) {
    auto detector = TrainDetector(entry.kind, data, options);
    if (detector == nullptr) {
      table.AddRow({entry.name, "-", "-", "-"});
      continue;
    }
    std::vector<DpClass> predicted;
    std::vector<DpClass> actual;
    predicted.reserve(sample.size());
    actual.reserve(sample.size());
    for (const Sample& s : sample) {
      predicted.push_back(detector->Classify(data[s.concept_index].concept_id,
                                             data[s.concept_index].features[s.row]));
      actual.push_back(s.truth);
    }
    Prf prf = DetectionPrf(predicted, actual);
    table.AddRow(entry.name, {prf.precision, prf.recall, prf.f1}, 3);
  }
  table.Print(std::cout);
  (void)table.WriteCsv("bench_table4.csv");
  return 0;
}
