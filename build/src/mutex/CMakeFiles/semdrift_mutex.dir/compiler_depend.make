# Empty compiler generated dependencies file for semdrift_mutex.
# This may be replaced when dependencies are built.
