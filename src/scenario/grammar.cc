#include "scenario/grammar.h"

#include <algorithm>
#include <initializer_list>

#include "util/rng.h"

namespace semdrift {
namespace scenario {

namespace {

/// All grammar draws pick from explicit grids (multiples of the shrinker's
/// steps) rather than continuous ranges: a sampled scenario and its
/// minimized form then live in the same value space.
double Pick(Rng* rng, std::initializer_list<double> grid) {
  return grid.begin()[rng->NextBounded(grid.size())];
}

int PickInt(Rng* rng, std::initializer_list<int> grid) {
  return grid.begin()[rng->NextBounded(grid.size())];
}

/// Small worlds and thin corpora: a hunt runs hundreds of these, and small
/// inputs are the shrunk counterexamples. Coverage stays thin (the drift
/// driver) because sentence budgets scale with the concept count.
void SampleBase(Rng* rng, Scenario* s) {
  s->world.num_concepts = PickInt(rng, {12, 16, 24, 32, 48});
  s->world.min_instances = PickInt(rng, {2, 3, 4});
  s->world.max_instances =
      s->world.min_instances + PickInt(rng, {8, 16, 24, 40});
  s->world.popularity_zipf = Pick(rng, {0.8, 1.0, 1.3, 1.6});
  s->world.polysemy_rate = Pick(rng, {0.1, 0.2, 0.3});
  s->world.similar_twin_rate = Pick(rng, {0.0, 0.05, 0.1});
  s->world.twin_overlap = Pick(rng, {0.6, 0.7, 0.8});
  s->world.min_confusables = 2;
  s->world.max_confusables = PickInt(rng, {3, 4, 5});
  s->world.verified_fraction = Pick(rng, {0.1, 0.25, 0.4});
  s->corpus.num_sentences = PickInt(rng, {800, 1200, 2000, 3000});
  s->corpus.frac_ambiguous = Pick(rng, {0.5, 0.6, 0.7});
  s->corpus.polyseme_link_prob = Pick(rng, {0.6, 0.75, 0.9});
  s->corpus.misparse_rate = Pick(rng, {0.0, 0.02, 0.04});
  s->corpus.wrongfact_rate = Pick(rng, {0.0, 0.02, 0.04});
  s->corpus.concept_zipf = Pick(rng, {0.4, 0.6, 0.8});
  s->pipeline.max_iterations = PickInt(rng, {6, 8, 12});
  s->pipeline.max_rounds = PickInt(rng, {2, 4, 6});
  s->pipeline.frequency_threshold_k = PickInt(rng, {2, 3, 4});
}

void ApplyDpDense(Rng* rng, Scenario* s) {
  s->world.polysemy_rate = Pick(rng, {0.6, 0.75, 0.9});
  s->world.min_confusables = 3;
  s->world.max_confusables = PickInt(rng, {5, 6});
  s->corpus.frac_ambiguous = Pick(rng, {0.7, 0.8, 0.9});
  s->corpus.polyseme_link_prob = Pick(rng, {0.85, 0.95, 1.0});
  s->corpus.ambiguous_uniform_prob = Pick(rng, {0.95, 1.0});
}

void ApplyMutexChain(Rng* rng, Scenario* s) {
  s->world.num_concepts = PickInt(rng, {32, 48, 64});
  s->world.similar_twin_rate = 0.0;
  s->world.min_confusables = PickInt(rng, {4, 5});
  s->world.max_confusables = s->world.min_confusables + 2;
  s->pipeline.mutex_threshold = Pick(rng, {0.2, 0.3, 0.4});
  s->pipeline.similar_threshold =
      std::max(s->pipeline.mutex_threshold + 0.1, 0.5);
  s->pipeline.min_core_instances = PickInt(rng, {1, 2});
}

void ApplyTwinStraddle(Rng* rng, Scenario* s) {
  s->world.similar_twin_rate = Pick(rng, {0.3, 0.45, 0.6});
  s->pipeline.similar_threshold = Pick(rng, {0.4, 0.5, 0.6});
  // Overlap straddling the highly-similar band: the twin's core cosine
  // lands just above or just below the closure threshold.
  double delta = Pick(rng, {-0.1, -0.05, 0.0, 0.05, 0.1});
  s->world.twin_overlap =
      std::clamp(s->pipeline.similar_threshold + delta, 0.3, 0.9);
  s->pipeline.min_core_instances = PickInt(rng, {2, 3});
}

void ApplyBurstNoise(Rng* rng, Scenario* s) {
  s->corpus.misparse_rate = Pick(rng, {0.05, 0.1, 0.15, 0.2});
  s->corpus.misparse_late_frac = Pick(rng, {0.6, 0.8, 1.0});
  s->corpus.wrongfact_rate = Pick(rng, {0.05, 0.1, 0.15});
  s->pipeline.eq21_gate_accidental = rng->NextBool(0.5);
}

void ApplyMorphology(Rng* rng, Scenario* s) {
  s->world.morph_variant_rate = Pick(rng, {0.3, 0.5, 0.7});
  s->corpus.render_text = true;
  s->pipeline.serialize_roundtrip = true;
}

/// Streaming-burst: a pure-incremental stream (no rebuild cadence, no final
/// rebuild — worst case for drift) over a corpus whose noise arrives late,
/// so the last epochs' dirty scopes carry most of the misparse burst. The
/// hunter's stream-divergence class hunts for parameterizations where scoped
/// re-cleaning lands far from the batch taxonomy.
void ApplyStreamingBurst(Rng* rng, Scenario* s) {
  s->stream.epochs = PickInt(rng, {3, 4, 6});
  s->stream.final_full_rebuild = false;
  s->stream.full_rebuild_every = PickInt(rng, {0, 0, 0, 4});
  s->stream.rebuild_dirty_frac = Pick(rng, {1.0, 1.0, 0.9});
  s->corpus.misparse_rate = Pick(rng, {0.04, 0.08, 0.12});
  s->corpus.misparse_late_frac = Pick(rng, {0.7, 0.85, 1.0});
  s->corpus.wrongfact_rate = Pick(rng, {0.02, 0.06, 0.1});
}

void ApplyFaultOverlay(Rng* rng, Scenario* s) {
  s->faults.rate = Pick(rng, {0.1, 0.25, 0.5});
  s->faults.seed = rng->Next();
  // Stall is left to hand-written scenarios: each stall attempt costs a
  // full stage deadline of wall clock, which a hunt cannot afford.
  static const char* kKinds[] = {"throw", "nan"};
  s->faults.kinds = {kKinds[rng->NextBounded(2)]};
  static const char* kStages[] = {"warm", "collect", "score"};
  s->faults.stages = {kStages[rng->NextBounded(3)]};
  s->faults.transient_attempts = PickInt(rng, {0, 2});
  s->faults.max_retries = PickInt(rng, {0, 1, 2});
}

}  // namespace

std::vector<std::string> ScenarioArchetypes() {
  return {"dp-dense",      "mutex-chain",   "twin-straddle",
          "burst-noise",   "morphology",    "fault-overlay",
          "streaming-burst", "kitchen-sink"};
}

Scenario SampleScenario(uint64_t seed, const std::string& archetype) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xadf7);
  Scenario s;
  s.seed = seed;
  s.archetype = archetype;
  s.name = archetype + "-s" + std::to_string(seed);
  s.paper_named_concepts = false;
  s.num_eval_concepts = 8;
  SampleBase(&rng, &s);
  if (archetype == "dp-dense") {
    ApplyDpDense(&rng, &s);
  } else if (archetype == "mutex-chain") {
    ApplyMutexChain(&rng, &s);
  } else if (archetype == "twin-straddle") {
    ApplyTwinStraddle(&rng, &s);
  } else if (archetype == "burst-noise") {
    ApplyBurstNoise(&rng, &s);
  } else if (archetype == "morphology") {
    ApplyMorphology(&rng, &s);
  } else if (archetype == "fault-overlay") {
    ApplyFaultOverlay(&rng, &s);
  } else if (archetype == "streaming-burst") {
    ApplyStreamingBurst(&rng, &s);
  } else if (archetype == "kitchen-sink") {
    ApplyDpDense(&rng, &s);
    ApplyBurstNoise(&rng, &s);
    if (rng.NextBool(0.5)) ApplyMorphology(&rng, &s);
    if (rng.NextBool(0.5)) ApplyFaultOverlay(&rng, &s);
  }
  return s;
}

Scenario SampleScenario(uint64_t seed) {
  std::vector<std::string> archetypes = ScenarioArchetypes();
  // The archetype draw uses its own stream so the per-archetype overload
  // with the same seed samples identical remaining dimensions.
  Rng pick(seed * 0x2545f4914f6cdd1dULL + 0x5ce7);
  return SampleScenario(seed, archetypes[pick.NextBounded(archetypes.size())]);
}

}  // namespace scenario
}  // namespace semdrift
