#include "mutex/mutex_index.h"

#include <algorithm>
#include <cmath>

namespace semdrift {

namespace {
const std::vector<ConceptId> kNoConcepts;
}  // namespace

MutexIndex::MutexIndex(const KnowledgeBase& kb, size_t num_concepts,
                       MutexParams params)
    : params_(params) {
  core_norms_.assign(num_concepts, 0.0);
  similar_.resize(num_concepts);

  // Core vectors (iteration-1 frequency) + an inverted index over shared
  // core instances for sparse pairwise dot products.
  struct Posting {
    uint32_t concept_id;
    double weight;
  };
  std::unordered_map<InstanceId, std::vector<Posting>> inverted;
  std::vector<int> core_sizes(num_concepts, 0);
  for (size_t ci = 0; ci < num_concepts; ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    double norm_sq = 0.0;
    int size = 0;
    for (const auto& [e, count] : kb.Iter1InstancesOf(c)) {
      double w = static_cast<double>(count);
      norm_sq += w * w;
      ++size;
      inverted[e].push_back(Posting{c.value, w});
    }
    core_sizes[ci] = size;
    if (size >= params_.min_core_instances) {
      core_norms_[ci] = std::sqrt(norm_sq);
    }
  }

  // Sparse pairwise dot products over co-occurring core instances.
  std::unordered_map<uint64_t, double> dots;
  for (const auto& [e, postings] : inverted) {
    if (postings.size() < 2) continue;
    for (size_t i = 0; i < postings.size(); ++i) {
      for (size_t j = i + 1; j < postings.size(); ++j) {
        uint64_t key = PairKey(ConceptId(postings[i].concept_id),
                               ConceptId(postings[j].concept_id));
        dots[key] += postings[i].weight * postings[j].weight;
      }
    }
  }
  for (const auto& [key, dot] : dots) {
    uint32_t a = static_cast<uint32_t>(key >> 32);
    uint32_t b = static_cast<uint32_t>(key & 0xffffffffu);
    if (core_norms_[a] <= 0.0 || core_norms_[b] <= 0.0) continue;
    double sim = dot / (core_norms_[a] * core_norms_[b]);
    sims_.emplace(key, sim);
    if (sim > params_.similar_threshold) {
      similar_[a].push_back(ConceptId(b));
      similar_[b].push_back(ConceptId(a));
    }
  }

  // Live containment index for f2.
  for (size_t ci = 0; ci < num_concepts; ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    for (InstanceId e : kb.InstancesEverOf(c)) {
      if (kb.Contains(IsAPair{c, e})) containing_[e].push_back(c);
    }
  }
}

double MutexIndex::Sim(ConceptId a, ConceptId b) const {
  if (a == b) return 1.0;
  auto it = sims_.find(PairKey(a, b));
  return it == sims_.end() ? 0.0 : it->second;
}

bool MutexIndex::Usable(ConceptId c) const {
  return c.value < core_norms_.size() && core_norms_[c.value] > 0.0;
}

double MutexIndex::EffectiveSim(ConceptId a, ConceptId b) const {
  double best = Sim(a, b);
  for (ConceptId a2 : similar_[a.value]) best = std::max(best, Sim(a2, b));
  for (ConceptId b2 : similar_[b.value]) best = std::max(best, Sim(a, b2));
  return best;
}

bool MutexIndex::IsMutex(ConceptId a, ConceptId b) const {
  if (a == b) return false;
  if (!Usable(a) || !Usable(b)) return false;
  return EffectiveSim(a, b) < params_.mutex_threshold;
}

bool MutexIndex::HighlySimilar(ConceptId a, ConceptId b) const {
  if (a == b) return true;
  return Sim(a, b) > params_.similar_threshold;
}

const std::vector<ConceptId>& MutexIndex::SimilarConcepts(ConceptId c) const {
  if (c.value >= similar_.size()) return kNoConcepts;
  return similar_[c.value];
}

const std::vector<ConceptId>& MutexIndex::ConceptsContaining(InstanceId e) const {
  auto it = containing_.find(e);
  return it == containing_.end() ? kNoConcepts : it->second;
}

int MutexIndex::F2Count(ConceptId c, InstanceId e) const {
  int count = 0;
  for (ConceptId other : ConceptsContaining(e)) {
    if (other == c) continue;
    if (IsMutex(c, other)) ++count;
  }
  return count;
}

std::vector<double> MutexIndex::NonZeroSimilarities() const {
  std::vector<double> out;
  out.reserve(sims_.size());
  for (const auto& [key, sim] : sims_) {
    (void)key;
    out.push_back(sim);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace semdrift
