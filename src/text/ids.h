#ifndef SEMDRIFT_TEXT_IDS_H_
#define SEMDRIFT_TEXT_IDS_H_

#include <cstdint>
#include <functional>

namespace semdrift {

/// Strongly-typed 32-bit identifiers. Concepts, instances and sentences live
/// in separate id spaces; the strong types keep them from being mixed up in
/// the trigger graph and the knowledge base.
template <typename Tag>
struct Id32 {
  uint32_t value = kInvalidValue;

  static constexpr uint32_t kInvalidValue = 0xffffffffu;

  constexpr Id32() = default;
  constexpr explicit Id32(uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalidValue; }

  friend constexpr bool operator==(Id32 a, Id32 b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id32 a, Id32 b) { return a.value != b.value; }
  friend constexpr bool operator<(Id32 a, Id32 b) { return a.value < b.value; }
};

struct ConceptTag {};
struct InstanceTag {};
struct SentenceTag {};

/// A concept ("animal"); the left side of an isA pair.
using ConceptId = Id32<ConceptTag>;
/// An instance ("dog"); the right side of an isA pair.
using InstanceId = Id32<InstanceTag>;
/// A distinct sentence in the (de-duplicated) corpus.
using SentenceId = Id32<SentenceTag>;

/// An isA pair: (instance e, concept C) meaning "e isA C".
struct IsAPair {
  ConceptId concept_id;
  InstanceId instance;

  friend bool operator==(const IsAPair& a, const IsAPair& b) {
    return a.concept_id == b.concept_id && a.instance == b.instance;
  }
  friend bool operator<(const IsAPair& a, const IsAPair& b) {
    if (a.concept_id != b.concept_id) return a.concept_id < b.concept_id;
    return a.instance < b.instance;
  }
};

struct IsAPairHash {
  size_t operator()(const IsAPair& p) const {
    uint64_t x = (static_cast<uint64_t>(p.concept_id.value) << 32) | p.instance.value;
    // SplitMix64 finalizer as the mixing function.
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace semdrift

namespace std {
template <typename Tag>
struct hash<semdrift::Id32<Tag>> {
  size_t operator()(semdrift::Id32<Tag> id) const {
    return std::hash<uint32_t>()(id.value);
  }
};
}  // namespace std

#endif  // SEMDRIFT_TEXT_IDS_H_
