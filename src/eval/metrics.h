#ifndef SEMDRIFT_EVAL_METRICS_H_
#define SEMDRIFT_EVAL_METRICS_H_

#include <unordered_set>
#include <vector>

#include "eval/ground_truth.h"
#include "kb/knowledge_base.h"
#include "text/ids.h"

namespace semdrift {

/// Precision / recall / F1 triple. A zero denominator (no predictions, no
/// actual positives) yields 0.0 with the matching `_defined` flag cleared —
/// never NaN — so harnesses ranking runs by these numbers can distinguish
/// "measured 0" from "nothing to measure".
struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  bool precision_defined = false;
  bool recall_defined = false;

  static Prf FromCounts(size_t true_positives, size_t predicted_positives,
                        size_t actual_positives);
};

/// The four cleaning-quality dimensions of Table 3 / Table 5:
///   perror — removed errors / all removed;
///   rerror — removed errors / all errors;
///   pcorr  — remaining correct / all remaining;
///   rcorr  — remaining correct / all correct.
struct CleaningMetrics {
  double perror = 0.0;
  double rerror = 0.0;
  double pcorr = 0.0;
  double rcorr = 0.0;
  size_t removed = 0;
  size_t remaining = 0;
  size_t total_errors = 0;
  size_t total_correct = 0;
  /// Each ratio above is 0.0 with its flag cleared when the denominator is
  /// empty (nothing removed / no errors / nothing remaining / nothing
  /// correct) — an empty-population evaluation is all-undefined, not NaN.
  bool perror_defined = false;
  bool rerror_defined = false;
  bool pcorr_defined = false;
  bool rcorr_defined = false;
};

/// Evaluates a removal set against the pre-cleaning live pair population
/// (micro-averaged over `population`).
CleaningMetrics EvaluateCleaning(const GroundTruth& truth,
                                 const std::vector<IsAPair>& population,
                                 const std::unordered_set<IsAPair, IsAPairHash>& removed);

/// Live pairs of the scoped concepts (the evaluation population).
std::vector<IsAPair> LivePairsOf(const KnowledgeBase& kb,
                                 const std::vector<ConceptId>& scope);

/// Precision of live pairs under `scope` (share of pairs stating true
/// facts) — the y-axis of Fig. 5(a).
double LivePairPrecision(const GroundTruth& truth, const KnowledgeBase& kb,
                         const std::vector<ConceptId>& scope);

/// LivePairPrecision with its denominator: `defined` is false (and value
/// 0.0) when the scope holds no live pairs at all — a cleaner that empties
/// the KB has no precision, not a perfect or zero one.
struct PrecisionSample {
  double value = 0.0;
  size_t pairs = 0;
  bool defined = false;
};
PrecisionSample LivePairPrecisionSample(const GroundTruth& truth,
                                        const KnowledgeBase& kb,
                                        const std::vector<ConceptId>& scope);

/// Binary DP-detection precision/recall/F1: positives are DPs (either
/// type). `predicted` and `actual` are parallel per-instance label arrays.
Prf DetectionPrf(const std::vector<DpClass>& predicted,
                 const std::vector<DpClass>& actual);

/// Three-class accuracy over parallel label arrays.
double DetectionAccuracy(const std::vector<DpClass>& predicted,
                         const std::vector<DpClass>& actual);

/// p@k of a ranked instance list under one concept: the fraction of the top
/// k whose pair is correct (Table 2). `ranked` is best-first.
double PrecisionAtK(const GroundTruth& truth, ConceptId c,
                    const std::vector<InstanceId>& ranked, size_t k);

}  // namespace semdrift

#endif  // SEMDRIFT_EVAL_METRICS_H_
