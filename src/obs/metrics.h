#ifndef SEMDRIFT_OBS_METRICS_H_
#define SEMDRIFT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace semdrift {

namespace obs_internal {
struct HistogramCell;
}  // namespace obs_internal

/// Point-in-time copy of one histogram: per-bucket counts (the last bucket
/// is the +Inf overflow), total count and value sum.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_bounds;  ///< Finite bucket edges (le semantics).
  std::vector<uint64_t> buckets;     ///< upper_bounds.size() + 1 entries.
  uint64_t count = 0;
  double sum = 0.0;
};

/// Lock-free metrics registry: counters, gauges and fixed-bucket histograms.
///
/// Registration (RegisterCounter/...) takes a mutex and is meant to happen
/// once per call site (function-local static handles); recording through a
/// handle is lock-free — a counter add is one relaxed atomic RMW, a
/// histogram observation is a branch-free bucket lookup plus three relaxed
/// RMWs. Handles are stable for the registry's lifetime (cells live in
/// deques, which never relocate elements).
///
/// Counters saturate at UINT64_MAX instead of wrapping: a long-lived serving
/// process must never report a tiny count after 2^64 events.
///
/// Snapshots (CounterValue, Histogram, ToJson) read with relaxed loads —
/// consistent enough for reporting, never blocking writers. ToJson emits
/// names in sorted order so dumps are diffable.
class MetricsRegistry {
 public:
  class Counter {
   public:
    Counter() = default;
    /// Saturating add: the counter sticks at UINT64_MAX on overflow.
    void Add(uint64_t delta = 1) const {
      if (cell_ == nullptr) return;
      uint64_t prev = cell_->fetch_add(delta, std::memory_order_relaxed);
      if (prev > UINT64_MAX - delta) {
        cell_->store(UINT64_MAX, std::memory_order_relaxed);
      }
    }
    uint64_t Value() const {
      return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
    }
    bool valid() const { return cell_ != nullptr; }

   private:
    friend class MetricsRegistry;
    explicit Counter(std::atomic<uint64_t>* cell) : cell_(cell) {}
    std::atomic<uint64_t>* cell_ = nullptr;
  };

  class Gauge {
   public:
    Gauge() = default;
    void Set(int64_t value) const {
      if (cell_ != nullptr) cell_->store(value, std::memory_order_relaxed);
    }
    int64_t Value() const {
      return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    explicit Gauge(std::atomic<int64_t>* cell) : cell_(cell) {}
    std::atomic<int64_t>* cell_ = nullptr;
  };

  class Histogram {
   public:
    Histogram() = default;
    /// Buckets use `le` (less-or-equal) semantics: a value lands in the
    /// first bucket whose upper bound is >= value; values above every bound
    /// land in the +Inf overflow bucket.
    void Observe(double value) const;
    bool valid() const { return cell_ != nullptr; }

   private:
    friend class MetricsRegistry;
    explicit Histogram(obs_internal::HistogramCell* cell) : cell_(cell) {}
    obs_internal::HistogramCell* cell_ = nullptr;
  };

  /// Out-of-line: constructing/destroying histogram cells needs the
  /// complete HistogramCell type, which only metrics.cc sees.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registering the same name twice returns the same handle (call sites in
  /// different translation units may share a metric).
  Counter RegisterCounter(const std::string& name);
  Gauge RegisterGauge(const std::string& name);
  /// `upper_bounds` must be strictly increasing; re-registration with
  /// different bounds keeps the first registration's bounds.
  Histogram RegisterHistogram(const std::string& name,
                              std::vector<double> upper_bounds);

  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  /// Empty-name snapshot when the histogram does not exist.
  HistogramSnapshot HistogramValues(const std::string& name) const;

  /// Deterministically ordered (sorted by name) JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{"h":{"bounds":[...],
  ///    "buckets":[...],"count":N,"sum":S}}}
  /// Compact (no newlines, no tabs) so it can ride in a single line-protocol
  /// response field.
  std::string ToJson() const;

  /// Zeroes every registered metric (handles stay valid). Benches use this
  /// to scope a dump to one measured phase.
  void Reset();

 private:
  mutable std::mutex mu_;  ///< Guards registration and name lookup only.
  std::deque<std::pair<std::string, std::atomic<uint64_t>>> counters_;
  std::deque<std::pair<std::string, std::atomic<int64_t>>> gauges_;
  std::deque<std::unique_ptr<obs_internal::HistogramCell>> histograms_;
};

/// The process-wide registry every pipeline/serving hook records into.
MetricsRegistry& GlobalMetrics();

/// Shared latency bucket edges in nanoseconds: 1us..10s, roughly
/// logarithmic (1-2-5 per decade). Fixed across the codebase so latency
/// histograms from different subsystems are comparable.
const std::vector<double>& LatencyBucketsNs();

/// Millisecond-scale latency bucket edges: 10us..100s (expressed in ms),
/// 1-2-5 per decade. For coarse phase timings (model fits, batch stages)
/// that the ns buckets would squash into their top edge.
const std::vector<double>& LatencyBucketsMs();

/// Small bucket edges for size-ish distributions (batch sizes, counts):
/// 1, 2, 4, ... 4096.
const std::vector<double>& SizeBuckets();

}  // namespace semdrift

#endif  // SEMDRIFT_OBS_METRICS_H_
