#ifndef SEMDRIFT_UTIL_SUPERVISOR_H_
#define SEMDRIFT_UTIL_SUPERVISOR_H_

#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace semdrift {

/// Supervision policy for a run. Deadlines are *cooperative*: a stage is
/// only ever stopped at a PollCancellation() point, never preempted, so a
/// stage that finishes without polling past its deadline is accepted — the
/// guard layer adds no timing-dependent behavior to the happy path.
struct SupervisorOptions {
  /// Wall-clock budget per stage attempt. <= 0 disables deadlines.
  int stage_deadline_ms = 30000;
  /// Transient-failure retries per stage (attempts = 1 + max_retries).
  int max_retries = 2;
  /// Quarantine a concept whose retries exhaust (the run continues over the
  /// survivors). When false, an exhausted stage aborts the whole run with
  /// its error instead — fail-fast mode.
  bool quarantine = true;
  /// Deterministic bounded backoff between attempts: min(cap, base <<
  /// (attempt - 1)) milliseconds. Affects wall-clock only, never results.
  int backoff_base_ms = 1;
  int backoff_cap_ms = 50;
};

/// Per-concept verdict after a supervised run, ordered by severity —
/// merging keeps the worst outcome a concept ever reached.
enum class ConceptOutcome {
  kOk = 0,
  /// Succeeded after at least one failed attempt.
  kRetried,
  /// Completed with reduced fidelity (non-converged walk capped, instances
  /// dropped, fallback detector).
  kDegraded,
  /// Exhausted retries; excluded from all later stages and rounds.
  kQuarantined,
};

const char* ConceptOutcomeName(ConceptOutcome outcome);
bool ParseConceptOutcome(std::string_view name, ConceptOutcome* out);

/// One concept's health entry (only non-kOk concepts are stored; absence
/// means healthy).
struct ConceptHealth {
  uint32_t concept_id = 0;
  ConceptOutcome outcome = ConceptOutcome::kOk;
  int retries = 0;
  /// The stage where the (worst) outcome was reached.
  PipelineStage stage = PipelineStage::kScoreWarm;
  std::string detail;
};

/// Provenance of an instance dropped for a bad feature vector: which
/// concept, which instance, at which stage, and why.
struct DroppedInstance {
  uint32_t concept_id = 0;
  uint32_t instance = 0;
  PipelineStage stage = PipelineStage::kCollectTraining;
  std::string reason;
};

/// Aggregated per-concept outcomes of a supervised run. Persisted into
/// checkpoints (ToLines/FromLines) so --resume restores quarantine state;
/// surfaced by `semdrift run --health-report`.
///
/// Deterministic by construction: entries live in ordered maps keyed by
/// concept (and (concept_id, instance, stage) for drops), merges escalate to
/// the worst outcome, so the serialized report is identical however the
/// underlying parallel stages were scheduled.
class RunHealthReport {
 public:
  /// Merges one observation. Outcomes escalate (kOk < kRetried < kDegraded
  /// < kQuarantined); a worse outcome replaces the entry, an equal-or-better
  /// one only bumps the retry count.
  void Record(uint32_t concept_id, ConceptOutcome outcome, int retries,
              PipelineStage stage, const std::string& detail);

  /// Records a dropped instance (deduplicated) and marks its concept
  /// degraded.
  void RecordDrop(const DroppedInstance& drop);

  /// Records a detector-train degradation (a global stage, not per-concept).
  void RecordDetectorFallback(int retries, const std::string& detail);

  bool IsQuarantined(uint32_t concept_id) const;
  /// Sorted concept ids with outcome kQuarantined.
  std::vector<uint32_t> Quarantined() const;
  size_t CountWithOutcome(ConceptOutcome outcome) const;

  const std::map<uint32_t, ConceptHealth>& concepts() const { return concepts_; }
  bool detector_fallback() const { return detector_fallback_; }
  const std::string& detector_detail() const { return detector_detail_; }
  size_t num_drops() const { return drops_.size(); }

  bool empty() const {
    return concepts_.empty() && drops_.empty() && !detector_fallback_;
  }

  /// Checkpoint payload lines ("H\t..." per concept, "D\t..." per drop,
  /// "F\t..." for a detector fallback). Tabs/newlines in details are
  /// sanitized to spaces.
  std::vector<std::string> ToLines() const;
  /// Inverse of ToLines; any malformed line fails with kDataLoss carrying
  /// `context` (typically "path:line").
  Status MergeLine(const std::string& line, const std::string& context);

  /// Human-readable summary table for the CLI.
  std::string ToTable() const;

  friend bool operator==(const RunHealthReport& a, const RunHealthReport& b) {
    return a.ToLines() == b.ToLines();
  }

 private:
  std::map<uint32_t, ConceptHealth> concepts_;
  /// (concept_id, instance, stage) -> reason.
  std::map<std::tuple<uint32_t, uint32_t, int>, std::string> drops_;
  bool detector_fallback_ = false;
  int detector_retries_ = 0;
  std::string detector_detail_;
};

/// Outcome of one guarded stage execution, returned to the stage driver.
/// Drivers merge these into the health report *in deterministic (scope)
/// order* after a parallel stage completes — StageGuard itself never touches
/// shared state, which is what keeps supervised runs bit-identical at any
/// thread count.
struct StageOutcome {
  bool ok = false;
  int retries = 0;
  /// The failing attempt hit the deadline (vs threw / failed validation).
  bool cancelled = false;
  /// Last attempt's failure reason (also kept when a retry later succeeded).
  std::string error;
};

/// The supervision layer: wraps per-concept pipeline stages in guarded
/// attempt loops (deadline + retries + output validation + seeded fault
/// injection), accumulates a RunHealthReport, and answers quarantine
/// queries between stages.
///
/// Concurrency contract: RunGuarded and the fault queries are const and
/// thread-compatible (called from pool workers); MergeOutcome and health()
/// mutation are driver-side, called serially between stages.
class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options, ComputeFaultPlan faults = {})
      : options_(options), faults_(std::move(faults)) {}

  const SupervisorOptions& options() const { return options_; }
  const ComputeFaultPlan& faults() const { return faults_; }

  RunHealthReport* health() { return &health_; }
  const RunHealthReport& health() const { return health_; }

  bool IsQuarantined(uint32_t concept_id) const {
    return health_.IsQuarantined(concept_id);
  }

  /// Filters quarantined concepts out of a scope (Id is any strong id type
  /// with a `.value`). Called between stages; within a stage the scope is
  /// fixed.
  template <typename Id>
  std::vector<Id> Surviving(const std::vector<Id>& scope) const {
    std::vector<Id> out;
    out.reserve(scope.size());
    for (Id c : scope) {
      if (!health_.IsQuarantined(c.value)) out.push_back(c);
    }
    return out;
  }

  /// The guarded attempt loop around one stage body. Each attempt runs with
  /// a deadline-armed CancellationToken installed (the thread pool forwards
  /// it to workers for nested parallel sub-work); planned throw/stall faults
  /// fire before the body; `validate` (optional) vets the produced value —
  /// a non-empty string fails the attempt. On success `*out` holds the
  /// value; on exhaustion it is untouched. Returns outcome.ok.
  ///
  /// StageGuard is a pure observer of the happy path: with no fault planned
  /// and a deadline that never fires, body(0) runs exactly as it would
  /// unguarded.
  template <typename T>
  bool RunGuarded(PipelineStage stage, uint32_t concept_id,
                  const std::function<T(int attempt)>& body,
                  const std::function<std::string(const T&)>& validate, T* out,
                  StageOutcome* outcome) const {
    int attempts = 1 + (options_.max_retries > 0 ? options_.max_retries : 0);
    for (int attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        outcome->retries = attempt;
        BackoffSleep(attempt);
      }
      CancellationToken token;
      token.ArmDeadline(std::chrono::milliseconds(options_.stage_deadline_ms));
      ScopedCancellation scoped(&token);
      try {
        InjectPlannedFault(stage, concept_id, attempt);
        T value = body(attempt);
        if (validate) {
          std::string invalid = validate(value);
          if (!invalid.empty()) {
            outcome->error = invalid;
            continue;
          }
        }
        *out = std::move(value);
        outcome->ok = true;
        return true;
      } catch (const StageCancelledError& e) {
        outcome->cancelled = true;
        outcome->error = e.what();
      } catch (const std::exception& e) {
        outcome->cancelled = false;
        outcome->error = e.what();
      } catch (...) {
        outcome->cancelled = false;
        outcome->error = "unknown exception";
      }
    }
    return false;
  }

  /// True when the plan says this (stage, concept_id, attempt) should emit NaN.
  /// The guard cannot synthesize a poisoned T, so drivers poison their own
  /// output when this fires (and the validation / drop paths catch it).
  bool NanFaultActive(PipelineStage stage, uint32_t concept_id, int attempt) const;

  /// Driver-side merge of a guarded outcome, called in deterministic scope
  /// order after the stage. ok+retried -> kRetried; exhausted -> quarantine
  /// (or, with quarantine disabled, an error Status the driver must
  /// propagate — fail-fast).
  Status MergeOutcome(PipelineStage stage, uint32_t concept_id,
                      const StageOutcome& outcome);

 private:
  /// Throws for planned kThrow faults; spins-until-deadline (then throws
  /// StageCancelledError) for kStall. kNanEmit is the driver's job.
  void InjectPlannedFault(PipelineStage stage, uint32_t concept_id,
                          int attempt) const;
  void BackoffSleep(int attempt) const;

  SupervisorOptions options_;
  ComputeFaultPlan faults_;
  RunHealthReport health_;
};

/// NaN/Inf screen for any indexable feature container (FeatureVector,
/// score values). Returns the index of the first non-finite entry or -1.
template <typename Container>
int FirstNonFiniteIndex(const Container& values) {
  int i = 0;
  for (double v : values) {
    if (!(v == v) || v - v != 0.0) return i;  // NaN or +/-Inf, <cmath>-free.
    ++i;
  }
  return -1;
}

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_SUPERVISOR_H_
