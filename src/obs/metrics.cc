#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace semdrift {

namespace obs_internal {

/// Histogram storage: fixed bounds plus atomics. Bucket counts, total count
/// and sum are updated with independent relaxed RMWs — a snapshot taken mid
/// observation can be off by one observation, which is fine for reporting.
struct HistogramCell {
  std::string name;
  std::vector<double> upper_bounds;
  /// upper_bounds.size() + 1 cells; the last is the +Inf overflow bucket.
  std::deque<std::atomic<uint64_t>> buckets;
  std::atomic<uint64_t> count{0};
  std::atomic<double> sum{0.0};
};

}  // namespace obs_internal

using obs_internal::HistogramCell;

void MetricsRegistry::Histogram::Observe(double value) const {
  if (cell_ == nullptr) return;
  // First bucket whose upper bound is >= value ("le" semantics: an
  // observation exactly on an edge belongs to that edge's bucket).
  const auto& bounds = cell_->upper_bounds;
  size_t bucket = std::lower_bound(bounds.begin(), bounds.end(), value) -
                  bounds.begin();
  cell_->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cell_->count.fetch_add(1, std::memory_order_relaxed);
  double seen = cell_->sum.load(std::memory_order_relaxed);
  while (!cell_->sum.compare_exchange_weak(seen, seen + value,
                                           std::memory_order_relaxed)) {
  }
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Counter MetricsRegistry::RegisterCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, cell] : counters_) {
    if (existing == name) return Counter(&cell);
  }
  counters_.emplace_back(name, 0);
  return Counter(&counters_.back().second);
}

MetricsRegistry::Gauge MetricsRegistry::RegisterGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, cell] : gauges_) {
    if (existing == name) return Gauge(&cell);
  }
  gauges_.emplace_back(name, 0);
  return Gauge(&gauges_.back().second);
}

MetricsRegistry::Histogram MetricsRegistry::RegisterHistogram(
    const std::string& name, std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& cell : histograms_) {
    if (cell->name == name) return Histogram(cell.get());
  }
  auto cell = std::make_unique<HistogramCell>();
  cell->name = name;
  cell->upper_bounds = std::move(upper_bounds);
  // deque<atomic> cannot be resized (atomics are not movable); grow by
  // emplacing default cells.
  for (size_t i = 0; i <= cell->upper_bounds.size(); ++i) {
    cell->buckets.emplace_back(0);
  }
  histograms_.push_back(std::move(cell));
  return Histogram(histograms_.back().get());
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, cell] : counters_) {
    if (existing == name) return cell.load(std::memory_order_relaxed);
  }
  return 0;
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, cell] : gauges_) {
    if (existing == name) return cell.load(std::memory_order_relaxed);
  }
  return 0;
}

HistogramSnapshot MetricsRegistry::HistogramValues(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& cell : histograms_) {
    if (cell->name != name) continue;
    HistogramSnapshot out;
    out.name = cell->name;
    out.upper_bounds = cell->upper_bounds;
    out.buckets.reserve(cell->buckets.size());
    for (const auto& bucket : cell->buckets) {
      out.buckets.push_back(bucket.load(std::memory_order_relaxed));
    }
    out.count = cell->count.load(std::memory_order_relaxed);
    out.sum = cell->sum.load(std::memory_order_relaxed);
    return out;
  }
  return HistogramSnapshot{};
}

namespace {

/// %.17g keeps doubles exact; integers print as integers.
std::string FormatDouble(double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<int64_t>(v)) && v >= -1e15 && v <= 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> counters;
  for (const auto& [name, cell] : counters_) {
    counters[name] = cell.load(std::memory_order_relaxed);
  }
  std::map<std::string, int64_t> gauges;
  for (const auto& [name, cell] : gauges_) {
    gauges[name] = cell.load(std::memory_order_relaxed);
  }
  std::map<std::string, const HistogramCell*> histograms;
  for (const auto& cell : histograms_) histograms[cell->name] = cell.get();

  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, cell] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"bounds\":[";
    for (size_t i = 0; i < cell->upper_bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += FormatDouble(cell->upper_bounds[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < cell->buckets.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(cell->buckets[i].load(std::memory_order_relaxed));
    }
    out += "],\"count\":" +
           std::to_string(cell->count.load(std::memory_order_relaxed)) +
           ",\"sum\":" + FormatDouble(cell->sum.load(std::memory_order_relaxed)) +
           "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, cell] : counters_) {
    (void)name;
    cell.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : gauges_) {
    (void)name;
    cell.store(0, std::memory_order_relaxed);
  }
  for (auto& cell : histograms_) {
    for (auto& bucket : cell->buckets) bucket.store(0, std::memory_order_relaxed);
    cell->count.store(0, std::memory_order_relaxed);
    cell->sum.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

const std::vector<double>& LatencyBucketsNs() {
  static const std::vector<double>* buckets = [] {
    auto* out = new std::vector<double>();
    // 1us .. 10s, 1-2-5 per decade.
    for (double decade = 1e3; decade <= 1e9; decade *= 10.0) {
      out->push_back(decade);
      out->push_back(2 * decade);
      out->push_back(5 * decade);
    }
    out->push_back(1e10);
    return out;
  }();
  return *buckets;
}

const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double>* buckets = [] {
    auto* out = new std::vector<double>();
    // 10us .. 100s (in ms), 1-2-5 per decade: coarse phase timings like
    // forest fits that would crowd into the top of the ns buckets.
    for (double decade = 1e-2; decade <= 1e4; decade *= 10.0) {
      out->push_back(decade);
      out->push_back(2 * decade);
      out->push_back(5 * decade);
    }
    out->push_back(1e5);
    return out;
  }();
  return *buckets;
}

const std::vector<double>& SizeBuckets() {
  static const std::vector<double>* buckets = [] {
    auto* out = new std::vector<double>();
    for (double b = 1.0; b <= 4096.0; b *= 2.0) out->push_back(b);
    return out;
  }();
  return *buckets;
}

}  // namespace semdrift
