#ifndef SEMDRIFT_CORPUS_GENERATOR_H_
#define SEMDRIFT_CORPUS_GENERATOR_H_

#include <vector>

#include "corpus/world.h"
#include "text/sentence.h"
#include "util/rng.h"

namespace semdrift {

/// What kind of sentence the generator produced — retained as generator
/// metadata only (the extractor never sees it); used by tests and by the
/// sentence-level evaluation of Table 5.
enum class SentenceKind : uint8_t {
  /// Single candidate concept; instances truly belong to it.
  kUnambiguous = 0,
  /// Two candidate concepts; the head (first) is the true one.
  kAmbiguous = 1,
  /// An ambiguous sentence mis-committed by the parser: only the *wrong*
  /// concept survives as candidate (paper Sec. 2.2, "(cat isA dog)").
  kMisparse = 2,
  /// Unambiguous sentence asserting >= 1 false fact (paper Sec. 2.2,
  /// "(New York isA country)").
  kWrongFact = 3,
};

/// Generator-side ground truth about one sentence.
struct SentenceTruth {
  SentenceKind kind = SentenceKind::kUnambiguous;
  /// The concept the instance list was genuinely drawn from.
  ConceptId true_concept;
  /// For ambiguous sentences: the forced polyseme, when polyseme-linked.
  InstanceId polyseme;
};

/// Corpus-generation parameters. The defaults reproduce the paper's drift
/// dynamics: iteration-1 precision > 0.9 collapsing under 0.6 within a few
/// iterations, driven mostly by polyseme-linked ambiguous sentences.
struct CorpusSpec {
  int num_sentences = 100000;
  /// Fraction of sentences with two candidate concepts.
  double frac_ambiguous = 0.6;
  /// Probability that an ambiguous sentence is polyseme-linked: its adjacent
  /// concept is the other sense of a polysemous member of the head concept,
  /// and that polyseme is forced into the instance list.
  double polyseme_link_prob = 0.75;
  /// Of all sentences: ambiguous sentences whose parse wrongly commits to
  /// the adjacent concept (accidental-DP source #1).
  double misparse_rate = 0.01;
  /// Fraction of misparse sentences emitted with *two* wrong candidate
  /// concepts instead of one committed wrong concept. Single-candidate
  /// misparses are consumed in iteration 1; two-candidate ones defer to
  /// later iterations where the KB disambiguates — so their false pairs
  /// arrive as a late burst-noise epoch rather than early i.i.d. noise.
  double misparse_late_frac = 0.0;
  /// Of all sentences: unambiguous sentences carrying one false fact
  /// (accidental-DP source #2).
  double wrongfact_rate = 0.01;
  /// Instance-list length is uniform in [min_list, max_list].
  int min_list = 2;
  int max_list = 5;
  /// Zipf exponent for sentence allocation across concepts (popular concepts
  /// are written about more).
  double concept_zipf = 0.6;
  /// Probability that an *ambiguous* sentence samples its instances
  /// uniformly instead of by popularity. Tail-heavy ambiguous lists are what
  /// make later iterations add many distinct (and driftable) pairs.
  double ambiguous_uniform_prob = 0.95;
  /// Fraction of ambiguous sentences using the "other than" surface shape.
  double other_than_prob = 0.15;
  /// Render surface text (needed for parser round-trips and demos; benches
  /// that never look at text can turn it off to save memory).
  bool render_text = true;
};

/// A generated corpus: de-duplicated parsed sentences plus per-sentence
/// generator truth (parallel to the store, indexed by SentenceId).
struct Corpus {
  SentenceStore sentences;
  std::vector<SentenceTruth> truths;

  const SentenceTruth& TruthOf(SentenceId id) const { return truths[id.value]; }
};

/// Generates a corpus against a world. Deterministic in (*rng) state.
///
/// Mechanics mirror how the paper's web corpus feeds semantic drift:
///  * unambiguous sentences create the high-precision iteration-1 core;
///  * ambiguous sentences defer to later iterations where the knowledge base
///    disambiguates them — polyseme-linked ones are the Intentional-DP
///    channel ("food from animals such as pork, beef and chicken");
///  * misparse and wrong-fact sentences inject support-1 false pairs, the
///    Accidental-DP channel.
Corpus GenerateCorpus(const World& world, const CorpusSpec& spec, Rng* rng);

/// Rejects degenerate specs (negative sentence budget, inverted list-length
/// ranges, out-of-range probabilities) with kInvalidArgument naming the
/// offending field; GenerateCorpus on an invalid spec is UB.
Status ValidateCorpusSpec(const CorpusSpec& spec);

/// Validating wrapper: ValidateCorpusSpec then GenerateCorpus.
Result<Corpus> GenerateCorpusChecked(const World& world, const CorpusSpec& spec,
                                     Rng* rng);

}  // namespace semdrift

#endif  // SEMDRIFT_CORPUS_GENERATOR_H_
