file(REMOVE_RECURSE
  "libsemdrift_eval.a"
)
