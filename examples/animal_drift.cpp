// The paper's running example (Fig. 1(b) / Example 1), end to end on a
// hand-crafted world: "chicken" is a famous animal and an obscure food, the
// corpus contains the fateful sentence "common food from animals such as
// pork, beef and chicken", the naive extractor drifts pork/beef into
// Animal, and DP cleaning identifies chicken as an Intentional DP and rolls
// the drift back via Eq. 21.
//
// Run: ./build/examples/animal_drift

#include <cstdio>

#include "corpus/world.h"
#include "dp/cleaner.h"
#include "dp/features.h"
#include "dp/sentence_check.h"
#include "extract/extractor.h"
#include "extract/hearst_parser.h"

using namespace semdrift;

int main() {
  // --- World: the paper's Animal / Food story ------------------------------
  World::Builder builder;
  ConceptId animal = builder.AddConcept("animal");
  ConceptId food = builder.AddConcept("food");
  const char* animals[] = {"dog",   "cat",    "horse",  "rabbit", "elephant",
                           "dolphin", "lion", "camel",  "pigeon", "donkey",
                           "chimpanzee", "snake", "monkey", "duck"};
  const char* foods[] = {"pork", "beef", "milk", "meat", "rice",
                         "bread", "cheese", "noodle", "soup"};
  double weight = 1.0;
  for (const char* name : animals) {
    builder.AddMembership(animal, builder.AddInstance(name), weight *= 0.9);
  }
  weight = 1.0;
  for (const char* name : foods) {
    builder.AddMembership(food, builder.AddInstance(name), weight *= 0.9);
  }
  // chicken: popular animal, obscure food (the polyseme).
  InstanceId chicken = builder.AddInstance("chicken");
  builder.AddMembership(animal, chicken, 0.8);
  builder.AddMembership(food, chicken, 0.02);
  builder.AddPolyseme(chicken, animal, food);
  builder.AddConfusable(animal, food);
  builder.AddConfusable(food, animal);
  for (const char* name : {"dog", "cat", "horse"}) {
    builder.MarkVerified(animal, builder.AddInstance(name));
  }
  for (const char* name : {"pork", "beef", "milk"}) {
    builder.MarkVerified(food, builder.AddInstance(name));
  }
  builder.MarkVerified(animal, chicken);
  World world = builder.Build();

  // --- Corpus: hand-written Hearst sentences, parsed from raw text ---------
  const char* raw_sentences[] = {
      // Iteration-1 core for Animal (chicken included: S1 of the paper).
      "animals such as dog, cat, pig and chicken .",
      "animals such as dog and cat .",
      "many animals such as horse, rabbit and elephant .",
      "animals such as dolphin, lion and camel .",
      "animals such as pigeon, donkey and chimpanzee .",
      "animals such as snake and monkey .",
      "animals such as dog, horse and chicken .",
      "popular animals such as cat, dog and chicken .",
      "animals such as chicken and duck .",
      "animals such as chicken, dog and lion .",
      "animals such as chicken and monkey .",
      // Iteration-1 core for Food.
      "foods such as pork, beef and milk .",
      "common foods such as meat, rice and bread .",
      "foods such as cheese, noodle and soup .",
      "foods such as pork and beef .",
      "foods such as milk and meat .",
      // S3: the drift trigger — ambiguous between food (head) and animal
      // (adjacent), list truly about food, mentioning the polyseme.
      "common food from animals such as pork, beef and chicken .",
      "food from animals such as beef, milk and chicken .",
      "food of animals such as meat and chicken .",
  };

  HearstParser parser(&world.concept_vocab(), world.instance_vocab());
  SentenceStore store;
  for (const char* text : raw_sentences) {
    auto parsed = parser.Parse(text);
    if (!parsed.has_value()) {
      std::printf("unparseable: %s\n", text);
      continue;
    }
    store.Add(std::move(*parsed));
  }
  std::printf("parsed %zu Hearst sentences\n", store.size());

  // --- Iterative extraction: watch the drift happen ------------------------
  KnowledgeBase kb;
  IterativeExtractor extractor(&store, ExtractorOptions{});
  extractor.Run(&kb);

  // Instance names come from the parser's lexicon: it is a superset of the
  // world's (open-class instances like "pig" were discovered from text).
  auto name = [&](InstanceId e) -> const std::string& {
    return parser.instance_lexicon().TermOf(e.value);
  };
  auto show = [&](const char* label) {
    std::printf("%s\n  animal = {", label);
    for (InstanceId e : kb.LiveInstancesOf(animal)) {
      std::printf(" %s(%d)", name(e).c_str(), kb.Count(IsAPair{animal, e}));
    }
    std::printf(" }\n");
  };
  show("after extraction:");
  std::printf("  -> pork isA animal? %s   beef isA animal? %s\n",
              kb.Contains(IsAPair{animal, world.FindInstance("pork")}) ? "YES (drift!)"
                                                                       : "no",
              kb.Contains(IsAPair{animal, world.FindInstance("beef")}) ? "YES (drift!)"
                                                                       : "no");

  // --- Inspect the DP machinery on "chicken" -------------------------------
  MutexIndex mutex(kb, world.num_concepts());
  ScoreCache scores(&kb, RankModel::kRandomWalk);
  FeatureExtractor features(&kb, &mutex, &scores);
  FeatureVector f = features.Extract(animal, chicken);
  std::printf("features of (chicken isA animal): f1=%.3f f2=%.0f f3=%.3f f4=%.3f\n",
              f[0], f[1], f[2], f[3]);
  auto sub = kb.SubInstancesOf(IsAPair{animal, chicken});
  std::printf("sub-instances of chicken under animal:");
  for (const auto& [e, count] : sub) {
    std::printf(" %s(x%d)", name(e).c_str(), count);
  }
  std::printf("\n");

  // Eq. 21 on the S3 sentence directly.
  for (const auto& sentence : store.sentences()) {
    if (sentence.candidate_concepts.size() < 2) continue;
    double food_score = SentenceConceptScore(sentence, food, &scores);
    double animal_score = SentenceConceptScore(sentence, animal, &scores);
    std::printf("Eq.21 on \"%s\": Score(food)=%.3f Score(animal)=%.3f -> %s\n",
                sentence.text.c_str(), food_score, animal_score,
                food_score > animal_score ? "food (roll back the drift)"
                                          : "animal");
  }

  // --- DP cleaning ----------------------------------------------------------
  CleanerOptions options;
  options.seeds.frequency_threshold_k = 1;  // Tiny corpus: low evidence bar.
  options.train.max_unlabeled_per_concept = 50;
  DpCleaner cleaner(&store,
                    [&world](const IsAPair& pair) {
                      return world.IsVerified(pair.concept_id, pair.instance);
                    },
                    world.num_concepts(), options);
  CleaningReport report = cleaner.Clean(&kb, {animal, food});
  std::printf("cleaning: %zu intentional DPs flagged, %zu records rolled back\n",
              report.intentional_dps.size(), report.records_rolled_back);
  for (const IsAPair& pair : report.intentional_dps) {
    if (!(pair.instance == chicken)) continue;
    std::printf("  -> chicken flagged as an Intentional DP of %s\n",
                world.ConceptName(pair.concept_id).c_str());
  }
  show("after DP cleaning:");
  std::printf("  -> pork isA animal? %s   beef isA animal? %s   "
              "chicken isA animal? %s\n",
              kb.Contains(IsAPair{animal, world.FindInstance("pork")}) ? "YES" : "no",
              kb.Contains(IsAPair{animal, world.FindInstance("beef")}) ? "YES" : "no",
              kb.Contains(IsAPair{animal, chicken}) ? "yes (kept: correct!)" : "NO");
  return 0;
}
