#include "serve/snapshot_manager.h"

#include <chrono>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "obs/metrics.h"
#include "serve/snapshot_delta.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/string_util.h"
#include "util/supervisor.h"

namespace semdrift {

namespace {

struct ManagerMetrics {
  MetricsRegistry::Gauge generation;
  MetricsRegistry::Counter swaps;
  MetricsRegistry::Counter failed;
  MetricsRegistry::Counter rolled_back;
  MetricsRegistry::Counter orphaned;
  MetricsRegistry::Histogram swap_ns;
};

ManagerMetrics& GetManagerMetrics() {
  static ManagerMetrics* m = new ManagerMetrics{
      GlobalMetrics().RegisterGauge("serve.generation"),
      GlobalMetrics().RegisterCounter("serve.swap.count"),
      GlobalMetrics().RegisterCounter("serve.publish.failed"),
      GlobalMetrics().RegisterCounter("serve.publish.rolled_back"),
      GlobalMetrics().RegisterCounter("serve.publish.orphaned"),
      GlobalMetrics().RegisterHistogram("serve.swap.ns", LatencyBucketsNs()),
  };
  return *m;
}

/// Parses "<prefix><gen>.bin" publish names; anything else (temp carcasses,
/// quarantined files, foreign files) is ignored by the scanner.
bool ParsePublishName(const std::string& name, const std::string& prefix,
                      uint64_t* gen) {
  if (!StartsWith(name, prefix) || !EndsWith(name, ".bin")) return false;
  std::string digits = name.substr(prefix.size(),
                                   name.size() - prefix.size() - 4);
  return !digits.empty() && ParseUint64(digits, gen) && *gen > 0;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SnapshotManager::SnapshotManager(SnapshotManagerOptions options)
    : options_(std::move(options)) {
  stats_ = options_.shared_stats != nullptr ? options_.shared_stats : &owned_stats_;
  GetManagerMetrics();  // Register handles before the first stats/metrics query.
}

SnapshotManager::~SnapshotManager() { StopWatching(); }

Status SnapshotManager::LoadInitial() {
  Poll();
  if (Current() == nullptr) {
    return Status::NotFound("no loadable snapshot generation in " + options_.dir);
  }
  return Status::OK();
}

std::shared_ptr<const ServingGeneration> SnapshotManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

EnginePin SnapshotManager::Pin() const {
  std::shared_ptr<const ServingGeneration> cur = Current();
  return EnginePin{cur == nullptr ? nullptr : cur->engine.get(), cur};
}

uint64_t SnapshotManager::generation() const {
  std::shared_ptr<const ServingGeneration> cur = Current();
  return cur == nullptr ? 0 : cur->generation;
}

std::shared_ptr<ServingGeneration> SnapshotManager::LoadFull(
    const std::string& path, uint64_t gen, std::string* error) {
  Supervisor supervisor(SupervisorOptions{options_.load_deadline_ms,
                                          options_.load_retries,
                                          /*quarantine=*/true,
                                          options_.backoff_base_ms,
                                          options_.backoff_cap_ms});
  std::function<std::shared_ptr<ServingGeneration>(int)> body =
      [&](int /*attempt*/) {
        auto content = ReadFileToString(path);
        if (!content.ok()) throw std::runtime_error(content.status().message());
        auto reader = SnapshotReader::OpenFromBuffer(*content, path);
        if (!reader.ok()) throw std::runtime_error(reader.status().message());
        auto out = std::make_shared<ServingGeneration>(gen, Crc32Of(*content),
                                                       path, std::move(*reader));
        return out;
      };
  std::shared_ptr<ServingGeneration> loaded;
  StageOutcome outcome;
  if (!supervisor.RunGuarded<std::shared_ptr<ServingGeneration>>(
          PipelineStage::kSnapshotLoad, static_cast<uint32_t>(gen), body,
          /*validate=*/nullptr, &loaded, &outcome)) {
    *error = outcome.error;
    return nullptr;
  }
  return loaded;
}

std::shared_ptr<ServingGeneration> SnapshotManager::LoadDelta(
    const std::string& path, const ServingGeneration& base, std::string* error) {
  // The base arrays are recovered once per candidate, off the serve path —
  // the base reader is immutable, so this is safe against concurrent queries.
  const SnapshotParts base_parts = PartsFromReader(base.reader);
  Supervisor supervisor(SupervisorOptions{options_.load_deadline_ms,
                                          options_.load_retries,
                                          /*quarantine=*/true,
                                          options_.backoff_base_ms,
                                          options_.backoff_cap_ms});
  // Phase 1 (retried): parse the delta file strictly. This is the only step
  // with a transient failure mode — a publisher racing our read — so it is
  // the only step that earns retries.
  std::function<SnapshotDelta(int)> parse =
      [&](int /*attempt*/) {
        auto delta = LoadSnapshotDelta(path);
        if (!delta.ok()) throw std::runtime_error(delta.status().message());
        return std::move(*delta);
      };
  SnapshotDelta delta;
  StageOutcome parse_outcome;
  if (!supervisor.RunGuarded<SnapshotDelta>(
          PipelineStage::kSnapshotLoad, static_cast<uint32_t>(base.generation + 1),
          parse, /*validate=*/nullptr, &delta, &parse_outcome)) {
    *error = parse_outcome.error;
    return nullptr;
  }
  // A cleanly parsed delta whose base binding disagrees with the serving
  // generation is a *permanent* condition — its base generation was rolled
  // back, or was replaced by a republish with different bytes. Fail fast
  // instead of burning retries and backoff on a mismatch that can never
  // heal; the caller quarantines the doomed chain and keeps serving.
  if (delta.base_generation != base.generation ||
      delta.base_crc32 != base.image_crc32) {
    *error = "delta " + path + " binds to generation " +
             std::to_string(delta.base_generation) + " crc32 " +
             std::to_string(delta.base_crc32) + ", but serving generation " +
             std::to_string(base.generation) + " has crc32 " +
             std::to_string(base.image_crc32) +
             " (base rolled back or replaced)";
    return nullptr;
  }
  // Phase 2: materialize and deep-validate — deterministic functions of the
  // parsed bytes, guarded for the deadline but pointless to retry.
  std::function<std::shared_ptr<ServingGeneration>(int)> body =
      [&](int /*attempt*/) {
        auto image = MaterializeSnapshotDelta(delta, base_parts, base.generation,
                                              base.image_crc32);
        if (!image.ok()) throw std::runtime_error(image.status().message());
        // Re-run the deep structural Validate() on the materialized image
        // before it can ever be served.
        auto reader = SnapshotReader::OpenFromBuffer(*image, path);
        if (!reader.ok()) throw std::runtime_error(reader.status().message());
        auto out = std::make_shared<ServingGeneration>(
            delta.generation, Crc32Of(*image), path, std::move(*reader));
        return out;
      };
  Supervisor materialize_supervisor(SupervisorOptions{
      options_.load_deadline_ms, /*max_retries=*/0,
      /*quarantine=*/true, options_.backoff_base_ms, options_.backoff_cap_ms});
  std::shared_ptr<ServingGeneration> loaded;
  StageOutcome outcome;
  if (!materialize_supervisor.RunGuarded<std::shared_ptr<ServingGeneration>>(
          PipelineStage::kSnapshotLoad, static_cast<uint32_t>(base.generation + 1),
          body, /*validate=*/nullptr, &loaded, &outcome)) {
    *error = outcome.error;
    return nullptr;
  }
  return loaded;
}

void SnapshotManager::Install(std::shared_ptr<ServingGeneration> next) {
  QueryEngineOptions engine_options = options_.engine;
  engine_options.shared_stats = stats_;
  engine_options.generation = next->generation;
  // A fresh engine per generation: the response cache starts empty (stale
  // answers cannot leak across a swap) while ServeStats persist.
  next->engine = std::make_unique<QueryEngine>(&next->reader, engine_options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(next);
    GetManagerMetrics().generation.Set(
        static_cast<int64_t>(current_->generation));
  }
}

void SnapshotManager::Quarantine(const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(path, path + ".quarantined", ec);
  // A failed rename (e.g. the publisher already replaced the file) is not
  // actionable here; the next poll re-evaluates whatever is on disk.
}

SnapshotPollResult SnapshotManager::Poll() {
  std::lock_guard<std::mutex> poll_lock(poll_mu_);
  SnapshotPollResult result;

  std::map<uint64_t, std::string> fulls;
  std::map<uint64_t, std::string> deltas;
  {
    std::error_code ec;
    std::filesystem::directory_iterator it(options_.dir, ec);
    if (!ec) {
      for (const auto& entry : it) {
        std::error_code entry_ec;
        if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
        const std::string name = entry.path().filename().string();
        uint64_t gen = 0;
        if (ParsePublishName(name, "snap-", &gen)) {
          fulls[gen] = entry.path().string();
        } else if (ParsePublishName(name, "delta-", &gen)) {
          deltas[gen] = entry.path().string();
        }
      }
    }
  }

  std::shared_ptr<const ServingGeneration> cur = Current();
  ManagerMetrics& metrics = GetManagerMetrics();

  auto record_failure = [&](const std::string& path) {
    Quarantine(path);
    ++result.failed;
    metrics.failed.Add();
    if (cur != nullptr) {
      ++result.rolled_back;
      metrics.rolled_back.Add();
    }
  };

  // Newest loadable full image first; anything older than the serving
  // generation is just a stale publish, not a failure.
  for (auto it = fulls.rbegin(); it != fulls.rend(); ++it) {
    const uint64_t gen = it->first;
    if (cur != nullptr && gen <= cur->generation) break;
    const uint64_t started = NowNs();
    std::string error;
    std::shared_ptr<ServingGeneration> next = LoadFull(it->second, gen, &error);
    if (next == nullptr) {
      record_failure(it->second);
      continue;
    }
    Install(std::move(next));
    cur = Current();
    ++result.swaps;
    metrics.swaps.Add();
    metrics.swap_ns.Observe(static_cast<double>(NowNs() - started));
    break;
  }

  // Contiguous delta chain on top of the serving generation. A delta for a
  // generation we already passed is stale; a gap ends the chain (the missing
  // generation may still be publishing).
  while (cur != nullptr) {
    auto it = deltas.find(cur->generation + 1);
    if (it == deltas.end()) break;
    const uint64_t started = NowNs();
    std::string error;
    std::shared_ptr<ServingGeneration> next = LoadDelta(it->second, *cur, &error);
    if (next == nullptr) {
      record_failure(it->second);
      // The quarantined delta's image will never exist, so contiguous
      // successors on disk chain onto a dead base and can never apply —
      // quarantine them now instead of letting them wedge every later poll
      // (as a permanent failed-and-rolled-back loop) until a full image
      // happens to arrive.
      for (auto orphan = deltas.find(it->first + 1); orphan != deltas.end();
           orphan = deltas.find(orphan->first + 1)) {
        Quarantine(orphan->second);
        ++result.orphaned;
        metrics.orphaned.Add();
      }
      break;
    }
    Install(std::move(next));
    cur = Current();
    ++result.swaps;
    metrics.swaps.Add();
    metrics.swap_ns.Observe(static_cast<double>(NowNs() - started));
  }

  result.generation = cur == nullptr ? 0 : cur->generation;
  return result;
}

void SnapshotManager::StartWatching(int poll_interval_ms) {
  StopWatching();
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    stop_watching_ = false;
  }
  watcher_ = std::thread([this, poll_interval_ms] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(watch_mu_);
        watch_cv_.wait_for(lock, std::chrono::milliseconds(poll_interval_ms),
                           [this] { return stop_watching_; });
        if (stop_watching_) return;
      }
      Poll();
    }
  });
}

void SnapshotManager::StopWatching() {
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    stop_watching_ = true;
  }
  watch_cv_.notify_all();
  if (watcher_.joinable()) watcher_.join();
}

}  // namespace semdrift
