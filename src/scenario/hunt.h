#ifndef SEMDRIFT_SCENARIO_HUNT_H_
#define SEMDRIFT_SCENARIO_HUNT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "scenario/shrink.h"

namespace semdrift {
namespace scenario {

/// Search configuration. Everything downstream of `seed` is deterministic:
/// the sample sequence, each run, each shrink — so a hunt with a fixed seed
/// reproduces the same minimized scenarios byte-for-byte at any thread
/// count.
struct HuntOptions {
  uint64_t seed = 1;
  int num_samples = 50;
  /// Restrict sampling to one grammar archetype; empty draws the archetype
  /// per sample from its own seed stream.
  std::string archetype;
  /// A run where cleaning engaged — executed at least one round and rolled
  /// back at least `min_rolled_back_for_collapse` records — yet left a
  /// defined post-cleaning precision below this floor (backed by at least
  /// `min_pairs_for_collapse` live pairs) is flagged as a precision
  /// collapse. The engagement conditions keep the shrinker from minimizing
  /// every finding into "noisy extraction, cleaner idle" trivia.
  double precision_floor = 0.55;
  size_t min_pairs_for_collapse = 20;
  size_t min_rolled_back_for_collapse = 1;
  /// A run where cleaning *lowered* precision by more than this margin is
  /// flagged as a cleaning regression even above the floor.
  double regression_margin = 0.2;
  /// A streaming run (stream.epochs > 1) whose incremental-vs-batch
  /// live-pair Jaccard distance exceeds this is flagged as stream
  /// divergence: scoped re-cleaning landed on a materially different
  /// taxonomy than a batch rebuild of the same corpus would.
  double stream_divergence_threshold = 0.5;
  /// Minimize each finding before reporting it.
  bool shrink = true;
  ShrinkOptions shrink_options;
  /// Progress sink (one line per sample / shrink); null discards.
  std::function<void(const std::string&)> log;
};

/// Failure classes, from most to least severe. The shrinker's predicate is
/// "the same class reproduces", so a minimized scenario demonstrates the
/// class it was filed under, not merely any failure.
///   "invariant"           — KnowledgeBase::Validate or the serialize
///                           round-trip broke;
///   "stream-divergence"   — the incremental stream's taxonomy drifted past
///                           the Jaccard-distance threshold from batch;
///   "precision-collapse"  — cleaned precision fell below the floor;
///   "cleaning-regression" — cleaning reduced precision by more than the
///                           margin.
/// Empty string = the run is unremarkable.
std::string ClassifyFailure(const ScenarioOutcome& outcome,
                            const HuntOptions& options);

/// Pins a replay envelope around measured metrics: tight precision bands
/// (±0.05) and count ceilings with a small slack. A checked-in hunter
/// discovery then *passes* replay — the envelope records the collapsed
/// behavior; the discovery story lives in the scenario's notes.
void PinEnvelope(Scenario* s, const ScenarioMetrics& m);

struct HuntFinding {
  /// Minimized scenario (raw sample when shrinking is off), with notes
  /// documenting seed, archetype, failure class and the pre-shrink metric,
  /// and an envelope pinned to the minimized run's metrics.
  Scenario scenario;
  uint64_t sample_seed = 0;
  std::string failure_class;
  /// One-line human summary: class plus the metric that tripped it.
  std::string summary;
  /// Metrics of the final (minimized) scenario.
  ScenarioMetrics metrics;
  size_t shrink_evaluations = 0;
};

struct HuntReport {
  size_t samples_run = 0;
  std::vector<HuntFinding> findings;
};

/// Samples the grammar `num_samples` times, runs each scenario through the
/// full pipeline, classifies failures, and (optionally) shrinks each one.
/// Status errors only for infrastructure problems; scenarios that merely
/// misbehave become findings.
Result<HuntReport> RunHunt(const HuntOptions& options);

}  // namespace scenario
}  // namespace semdrift

#endif  // SEMDRIFT_SCENARIO_HUNT_H_
