#include "util/fault_injection.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace semdrift {

namespace {

/// Splits into lines *including* their trailing newline bytes, so that
/// reassembly after drop/duplicate is byte-exact for untouched lines.
std::vector<std::string> SplitKeepingNewlines(const std::string& content) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < content.size()) {
    size_t nl = content.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, nl - start + 1));
    start = nl + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) out += line;
  return out;
}

/// Bytes that are invalid in any UTF-8 sequence position (lone continuation
/// bytes and overlong-encoding leads), guaranteed to poison text fields.
std::string GarbageBytes(Rng* rng, size_t n) {
  static const unsigned char kPool[] = {0xff, 0xfe, 0xc0, 0xc1, 0x80,
                                        0x9f, 0xf5, 0x00, 0x0b, 0x1b};
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(kPool[rng->NextBounded(sizeof(kPool))]));
  }
  return out;
}

/// SplitMix64 finalizer; decorrelates (seed, key) pairs for the fault plan's
/// per-concept decisions without pulling in the thread-pool header.
uint64_t MixSeed(uint64_t seed, uint64_t key) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (key + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from a mixed hash (53-bit mantissa fill).
double MixToUnit(uint64_t mixed) {
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kFlipBytes:
      return "flip-bytes";
    case FaultKind::kDropLine:
      return "drop-line";
    case FaultKind::kDuplicateLine:
      return "duplicate-line";
    case FaultKind::kGarbageLine:
      return "garbage-line";
    case FaultKind::kSpliceGarbage:
      return "splice-garbage";
    case FaultKind::kZeroFill:
      return "zero-fill";
    case FaultKind::kTornRename:
      return "torn-rename";
    case FaultKind::kPartialDeltaWrite:
      return "partial-delta-write";
  }
  return "unknown";
}

std::vector<FaultKind> AllFaultKinds() {
  return {FaultKind::kTruncate,       FaultKind::kFlipBytes,
          FaultKind::kDropLine,       FaultKind::kDuplicateLine,
          FaultKind::kGarbageLine,    FaultKind::kSpliceGarbage,
          FaultKind::kZeroFill,       FaultKind::kTornRename,
          FaultKind::kPartialDeltaWrite};
}

std::string FaultInjector::Corrupt(const std::string& content, FaultKind kind) {
  if (content.empty()) return content;
  switch (kind) {
    case FaultKind::kTruncate: {
      // Cut anywhere, including byte 0 (empty file) — a torn write can leave
      // any prefix behind.
      size_t cut = static_cast<size_t>(rng_.NextBounded(content.size()));
      return content.substr(0, cut);
    }
    case FaultKind::kFlipBytes: {
      std::string out = content;
      size_t flips = 1 + static_cast<size_t>(rng_.NextBounded(8));
      for (size_t i = 0; i < flips; ++i) {
        size_t pos = static_cast<size_t>(rng_.NextBounded(out.size()));
        unsigned mask = 1u << rng_.NextBounded(8);
        out[pos] = static_cast<char>(static_cast<unsigned char>(out[pos]) ^ mask);
      }
      return out;
    }
    case FaultKind::kDropLine: {
      std::vector<std::string> lines = SplitKeepingNewlines(content);
      if (lines.size() <= 1) return std::string();
      size_t victim = static_cast<size_t>(rng_.NextBounded(lines.size()));
      lines.erase(lines.begin() + static_cast<ptrdiff_t>(victim));
      return JoinLines(lines);
    }
    case FaultKind::kDuplicateLine: {
      std::vector<std::string> lines = SplitKeepingNewlines(content);
      size_t victim = static_cast<size_t>(rng_.NextBounded(lines.size()));
      lines.insert(lines.begin() + static_cast<ptrdiff_t>(victim), lines[victim]);
      return JoinLines(lines);
    }
    case FaultKind::kGarbageLine: {
      std::vector<std::string> lines = SplitKeepingNewlines(content);
      size_t victim = static_cast<size_t>(rng_.NextBounded(lines.size()));
      bool had_newline = !lines[victim].empty() && lines[victim].back() == '\n';
      size_t len = 1 + static_cast<size_t>(rng_.NextBounded(40));
      lines[victim] = GarbageBytes(&rng_, len);
      // Keep the line structure: garbage replaces the payload, not the
      // record separator (a missing separator is kTruncate's job).
      if (had_newline) lines[victim] += '\n';
      // Strip embedded newlines so exactly one line is poisoned.
      for (size_t i = 0; i + 1 < lines[victim].size(); ++i) {
        if (lines[victim][i] == '\n') lines[victim][i] = static_cast<char>(0xff);
      }
      return JoinLines(lines);
    }
    case FaultKind::kSpliceGarbage: {
      std::string out = content;
      size_t pos = static_cast<size_t>(rng_.NextBounded(out.size()));
      size_t len = 1 + static_cast<size_t>(rng_.NextBounded(16));
      std::string garbage = GarbageBytes(&rng_, len);
      for (char& c : garbage) {
        if (c == '\n') c = static_cast<char>(0xfe);
      }
      out.insert(pos, garbage);
      return out;
    }
    case FaultKind::kZeroFill: {
      // Zero a random range, length preserved: the shape a crashed ext4
      // delayed-allocation write comes back in after journal replay. Range
      // length is capped at a "page" so most of the file stays intact (the
      // interesting case: damage embedded in otherwise-valid content).
      std::string out = content;
      size_t pos = static_cast<size_t>(rng_.NextBounded(out.size()));
      size_t max_len = std::min<size_t>(out.size() - pos, 4096);
      size_t len = 1 + static_cast<size_t>(rng_.NextBounded(max_len));
      for (size_t i = pos; i < pos + len; ++i) out[i] = '\0';
      return out;
    }
    case FaultKind::kTornRename: {
      // The rename never landed: the final name holds zero bytes.
      return std::string();
    }
    case FaultKind::kPartialDeltaWrite: {
      // Keep a strict prefix of whole lines (always dropping at least the
      // last one, which is the checksum footer for framed files). Every
      // surviving byte is valid, so only end-of-file accounting can object.
      std::vector<std::string> lines = SplitKeepingNewlines(content);
      size_t keep = static_cast<size_t>(rng_.NextBounded(lines.size()));
      lines.resize(keep);
      return JoinLines(lines);
    }
  }
  return content;
}

std::string FaultInjector::CorruptRandom(const std::string& content,
                                         FaultKind* kind_out) {
  std::vector<FaultKind> kinds = AllFaultKinds();
  FaultKind kind = kinds[rng_.NextBounded(kinds.size())];
  if (kind_out != nullptr) *kind_out = kind;
  return Corrupt(content, kind);
}

Status FaultInjector::CorruptFile(const std::string& in_path,
                                  const std::string& out_path, FaultKind kind) {
  auto content = ReadFileToString(in_path);
  if (!content.ok()) return content.status();
  return WriteStringToFile(Corrupt(*content, kind), out_path);
}

const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kScoreWarm:
      return "warm";
    case PipelineStage::kCollectTraining:
      return "collect";
    case PipelineStage::kDetectorTrain:
      return "train";
    case PipelineStage::kDetectorScore:
      return "score";
    case PipelineStage::kSnapshotLoad:
      return "load";
  }
  return "unknown";
}

bool ParsePipelineStage(std::string_view name, PipelineStage* out) {
  for (PipelineStage stage :
       {PipelineStage::kScoreWarm, PipelineStage::kCollectTraining,
        PipelineStage::kDetectorTrain, PipelineStage::kDetectorScore,
        PipelineStage::kSnapshotLoad}) {
    if (name == PipelineStageName(stage)) {
      *out = stage;
      return true;
    }
  }
  return false;
}

const char* ComputeFaultKindName(ComputeFaultKind kind) {
  switch (kind) {
    case ComputeFaultKind::kThrow:
      return "throw";
    case ComputeFaultKind::kStall:
      return "stall";
    case ComputeFaultKind::kNanEmit:
      return "nan";
  }
  return "unknown";
}

bool ParseComputeFaultKind(std::string_view name, ComputeFaultKind* out) {
  for (ComputeFaultKind kind : AllComputeFaultKinds()) {
    if (name == ComputeFaultKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::vector<ComputeFaultKind> AllComputeFaultKinds() {
  return {ComputeFaultKind::kThrow, ComputeFaultKind::kStall,
          ComputeFaultKind::kNanEmit};
}

bool ComputeFaultPlan::ConceptFaulted(uint32_t concept_id) const {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  return MixToUnit(MixSeed(seed, concept_id)) < rate;
}

std::optional<ComputeFaultKind> ComputeFaultPlan::FaultFor(PipelineStage stage,
                                                           uint32_t concept_id,
                                                           int attempt) const {
  if (!ConceptFaulted(concept_id) || kinds.empty()) return std::nullopt;
  bool stage_targeted = false;
  for (PipelineStage s : stages) stage_targeted |= (s == stage);
  if (!stage_targeted) return std::nullopt;
  if (transient_attempts > 0 && attempt >= transient_attempts) return std::nullopt;
  // Kind is a pure function of (seed, concept_id) so every attempt and every
  // stage sees the same flavor — the fault is a property of the concept.
  uint64_t pick = MixSeed(seed ^ 0xc2b2ae3d27d4eb4fULL, concept_id);
  return kinds[pick % kinds.size()];
}

std::vector<uint32_t> ComputeFaultPlan::FaultedAmong(
    const std::vector<uint32_t>& universe) const {
  std::vector<uint32_t> out;
  for (uint32_t concept_id : universe) {
    if (ConceptFaulted(concept_id)) out.push_back(concept_id);
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  // Reject non-regular files up front: reading a directory, FIFO or device
  // node either blocks forever or yields bytes that are not "the file's
  // contents" — and a FIFO read that drains early looks exactly like a
  // silently-truncated load.
  std::error_code ec;
  std::filesystem::file_status st = std::filesystem::status(path, ec);
  if (ec) return Status::IOError("cannot stat " + path + ": " + ec.message());
  if (!std::filesystem::is_regular_file(st)) {
    return Status::DataLoss(path + ": not a regular file (refusing partial read)");
  }
  uintmax_t size_before = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path + ": " + ec.message());

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for " + path);
  std::string content = buffer.str();

  // A size change between stat and read-completion means a writer raced us:
  // the bytes we hold are some interleaving of old and new content, not any
  // version that ever existed on disk. Refuse rather than return a torn view.
  uintmax_t size_after = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path + ": " + ec.message());
  if (content.size() != size_before || size_after != size_before) {
    return Status::DataLoss(
        path + ": size changed mid-read (expected " + std::to_string(size_before) +
        " bytes, read " + std::to_string(content.size()) + ", now " +
        std::to_string(size_after) + " at byte offset " +
        std::to_string(std::min<uintmax_t>(content.size(), size_before)) + ")");
  }
  return content;
}

Status WriteStringToFile(const std::string& content, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace semdrift
