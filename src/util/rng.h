#ifndef SEMDRIFT_UTIL_RNG_H_
#define SEMDRIFT_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace semdrift {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). Every stochastic component in the library takes an explicit
/// Rng so that all experiments — corpus generation, sampling, random-forest
/// bootstraps — regenerate byte-identical results from a fixed seed.
class Rng {
 public:
  /// Seeds the generator deterministically; equal seeds give equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli trial with probability p of true.
  bool NextBool(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns weights.size() - 1 when all weights are zero (degenerate input).
  size_t NextDiscrete(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Zipf-distributed sampler over ranks {0, 1, ..., n-1} with exponent s:
/// P(rank = r) proportional to 1 / (r + 1)^s. Used to give synthetic concepts
/// the head-heavy instance popularity real web data shows. Sampling is O(log n)
/// via binary search over the precomputed CDF.
class ZipfSampler {
 public:
  /// Precondition: n > 0, s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of a given rank.
  double Pmf(size_t rank) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  std::vector<double> pmf_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_RNG_H_
