#include "serve/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace semdrift {

namespace {

// -- Format constants --------------------------------------------------------

// "SDSNAP1\n" as a little-endian u64.
constexpr uint64_t kMagic = 0x0a3150414e534453ull;
// "SNAP" end marker after the file CRC.
constexpr uint32_t kEndMagic = 0x50414e53u;
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 48;
constexpr size_t kSectionEntryBytes = 24;
constexpr size_t kFooterBytes = 8;

constexpr uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24;
}

// Section order is fixed in version 1.
enum SectionIndex {
  kSecConceptNames = 0,
  kSecInstanceNames,
  kSecForwardCsr,
  kSecRank,
  kSecScores,
  kSecSupport,
  kSecInverseCsr,
  kSecConceptMeta,
  kSecMutex,
  kSecNameSort,
  kNumSections,
};

constexpr uint32_t kSectionTags[kNumSections] = {
    FourCc('C', 'N', 'A', 'M'), FourCc('I', 'N', 'A', 'M'),
    FourCc('F', 'C', 'S', 'R'), FourCc('R', 'A', 'N', 'K'),
    FourCc('S', 'C', 'O', 'R'), FourCc('S', 'U', 'P', 'P'),
    FourCc('I', 'C', 'S', 'R'), FourCc('C', 'M', 'E', 'T'),
    FourCc('M', 'U', 'T', 'X'), FourCc('N', 'S', 'R', 'T'),
};

// The public SnapshotSection bits must line up with the file's section order.
static_assert(kSnapSecConceptNames == 1u << kSecConceptNames &&
                  kSnapSecScores == 1u << kSecScores &&
                  kSnapSecMutex == 1u << kSecMutex &&
                  kSnapSecNameSort == 1u << kSecNameSort &&
                  kSnapSecAll == (1u << kNumSections) - 1,
              "SnapshotSection bits out of sync with SectionIndex");

/// Four-character section name for error messages ("SCOR", ...).
std::string SectionName(int i) {
  const uint32_t tag = kSectionTags[i];
  std::string name(4, '\0');
  for (int b = 0; b < 4; ++b) name[b] = static_cast<char>((tag >> (8 * b)) & 0xff);
  return name;
}

// -- Little-endian append/read helpers --------------------------------------

void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 8);
}

void AppendF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

size_t Align8(size_t n) { return (n + 7) & ~size_t{7}; }

uint64_t MutexKey(uint32_t a, uint32_t b) {
  uint32_t lo = a < b ? a : b;
  uint32_t hi = a < b ? b : a;
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

bool Finite(double v) { return v == v && v - v == 0.0; }

/// Interned name table: u32 offsets[n+1] into the blob, then the blob.
std::string BuildNameSection(size_t n,
                             const std::function<const std::string&(size_t)>& name) {
  std::string payload;
  std::string blob;
  std::vector<uint32_t> offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    offsets[i] = static_cast<uint32_t>(blob.size());
    blob += name(i);
  }
  offsets[n] = static_cast<uint32_t>(blob.size());
  payload.reserve(4 * offsets.size() + blob.size());
  for (uint32_t o : offsets) AppendU32(&payload, o);
  payload += blob;
  return payload;
}

}  // namespace

// -- Writer ------------------------------------------------------------------

SnapshotParts CompileSnapshotParts(const KnowledgeBase& kb, const World& world,
                                   const RunHealthReport* health,
                                   const SnapshotOptions& options) {
  const size_t nc = world.num_concepts();
  const size_t ni = world.num_instances();
  ScopedSpan span(&GlobalTrace(), "snapshot.compile");
  span.AddTag("concepts", static_cast<uint64_t>(nc));
  span.AddTag("instances", static_cast<uint64_t>(ni));

  SnapshotParts parts;
  parts.concept_names.reserve(nc);
  for (size_t i = 0; i < nc; ++i) {
    parts.concept_names.push_back(world.ConceptName(ConceptId(static_cast<uint32_t>(i))));
  }
  parts.instance_names.reserve(ni);
  for (size_t i = 0; i < ni; ++i) {
    parts.instance_names.push_back(
        world.InstanceName(InstanceId(static_cast<uint32_t>(i))));
  }

  // Score every concept over the final KB (checked: a non-converged walk
  // yields capped finite scores, never NaN in the score column). Fans out
  // over the global pool; concept order makes the result deterministic.
  std::vector<std::unordered_map<InstanceId, double>> scores =
      ParallelMap<std::unordered_map<InstanceId, double>>(nc, [&](size_t ci) {
        return ScoreConceptChecked(kb, ConceptId(static_cast<uint32_t>(ci)),
                                   options.model, options.walk)
            .scores;
      });

  // Forward CSR: live pairs per concept, restricted to world id spaces
  // (open-class discoveries are skipped, matching ExportTaxonomyTsv), rows
  // sorted by instance id.
  parts.fwd_rows.assign(nc + 1, 0);
  for (size_t ci = 0; ci < nc; ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    std::vector<InstanceId> live = kb.LiveInstancesOf(c);
    live.erase(std::remove_if(live.begin(), live.end(),
                              [&](InstanceId e) { return e.value >= ni; }),
               live.end());
    std::sort(live.begin(), live.end());
    for (InstanceId e : live) {
      IsAPair pair{c, e};
      parts.fwd_instance.push_back(e.value);
      auto it = scores[ci].find(e);
      parts.score.push_back(it == scores[ci].end() ? 0.0 : it->second);
      parts.support.push_back(static_cast<uint32_t>(kb.Count(pair)));
      parts.iter1.push_back(static_cast<uint32_t>(kb.Iter1Count(pair)));
    }
    parts.fwd_rows[ci + 1] = parts.fwd_instance.size();
  }

  // Concept metadata + the sparse mutex table. The effective-similarity
  // replication below mirrors MutexIndex::EffectiveSim exactly (closure max
  // over each side's highly-similar partners, not the cross product).
  MutexIndex midx(kb, nc, options.mutex);
  parts.flags.assign(nc, 0);
  std::vector<uint32_t> usable;
  for (size_t ci = 0; ci < nc; ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    if (health != nullptr && health->IsQuarantined(c.value)) parts.flags[ci] |= 1u;
    if (midx.Usable(c)) {
      parts.flags[ci] |= 2u;
      usable.push_back(c.value);
    }
  }
  struct MutexEntry {
    uint64_t key;
    double sim;
  };
  std::vector<std::vector<MutexEntry>> mutex_rows =
      ParallelMap<std::vector<MutexEntry>>(usable.size(), [&](size_t i) {
        std::vector<MutexEntry> row;
        ConceptId a(usable[i]);
        for (size_t j = i + 1; j < usable.size(); ++j) {
          ConceptId b(usable[j]);
          double eff = midx.Sim(a, b);
          for (ConceptId a2 : midx.SimilarConcepts(a)) {
            eff = std::max(eff, midx.Sim(a2, b));
          }
          for (ConceptId b2 : midx.SimilarConcepts(b)) {
            eff = std::max(eff, midx.Sim(a, b2));
          }
          if (eff > 0.0) row.push_back(MutexEntry{MutexKey(a.value, b.value), eff});
        }
        return row;
      });
  std::vector<MutexEntry> mutex_entries;
  for (const auto& row : mutex_rows) {
    mutex_entries.insert(mutex_entries.end(), row.begin(), row.end());
  }
  std::sort(mutex_entries.begin(), mutex_entries.end(),
            [](const MutexEntry& a, const MutexEntry& b) { return a.key < b.key; });
  parts.mutex_threshold = options.mutex.mutex_threshold;
  parts.similar_threshold = options.mutex.similar_threshold;
  for (const MutexEntry& e : mutex_entries) {
    parts.mutex_keys.push_back(e.key);
    parts.mutex_sims.push_back(e.sim);
  }
  return parts;
}

namespace {

/// Structural soundness of primary arrays — the gate in front of the image
/// builder, so a delta applied to the wrong base can never reach the
/// counting sorts below with out-of-range ids.
Status CheckParts(const SnapshotParts& parts) {
  const size_t nc = parts.num_concepts();
  const size_t ni = parts.num_instances();
  const uint64_t np = parts.num_pairs();
  if (np > 0xffffffffull) {
    return Status::Internal("snapshot: pair count " + std::to_string(np) +
                            " exceeds the u32 pair-index space");
  }
  if (parts.fwd_rows.size() != nc + 1 || parts.fwd_rows[0] != 0 ||
      parts.fwd_rows[nc] != np) {
    return Status::Internal("snapshot: forward rows do not cover the pair array");
  }
  if (parts.score.size() != np || parts.support.size() != np ||
      parts.iter1.size() != np || parts.flags.size() != nc) {
    return Status::Internal("snapshot: column lengths disagree with pair count");
  }
  for (size_t c = 0; c < nc; ++c) {
    if (parts.fwd_rows[c + 1] < parts.fwd_rows[c]) {
      return Status::Internal("snapshot: forward rows not monotone at concept " +
                              std::to_string(c));
    }
    for (uint64_t j = parts.fwd_rows[c]; j < parts.fwd_rows[c + 1]; ++j) {
      if (parts.fwd_instance[j] >= ni) {
        return Status::Internal("snapshot: pair references instance out of range");
      }
      if (j > parts.fwd_rows[c] && parts.fwd_instance[j] <= parts.fwd_instance[j - 1]) {
        return Status::Internal("snapshot: row of concept " + std::to_string(c) +
                                " not strictly sorted by instance");
      }
    }
  }
  for (double s : parts.score) {
    if (!Finite(s)) return Status::Internal("snapshot: non-finite score column");
  }
  if (parts.mutex_keys.size() != parts.mutex_sims.size()) {
    return Status::Internal("snapshot: mutex key/sim columns disagree");
  }
  for (size_t i = 0; i < parts.mutex_keys.size(); ++i) {
    uint32_t lo = static_cast<uint32_t>(parts.mutex_keys[i] >> 32);
    uint32_t hi = static_cast<uint32_t>(parts.mutex_keys[i] & 0xffffffffu);
    if (lo >= hi || hi >= nc) {
      return Status::Internal("snapshot: mutex key out of range");
    }
    if (i > 0 && parts.mutex_keys[i] <= parts.mutex_keys[i - 1]) {
      return Status::Internal("snapshot: mutex keys not strictly sorted");
    }
    if (!Finite(parts.mutex_sims[i]) || parts.mutex_sims[i] < 0.0) {
      return Status::Internal("snapshot: mutex similarity invalid");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> BuildSnapshotImage(const SnapshotParts& parts) {
  Status sound = CheckParts(parts);
  if (!sound.ok()) return sound;
  const size_t nc = parts.num_concepts();
  const size_t ni = parts.num_instances();
  const uint64_t np = parts.num_pairs();

  // Rank slices: each concept's pairs re-ordered by (score desc, id asc).
  std::vector<uint32_t> rank;
  rank.reserve(np);
  for (size_t ci = 0; ci < nc; ++ci) {
    const uint64_t base = parts.fwd_rows[ci];
    std::vector<uint32_t> order(parts.fwd_rows[ci + 1] - base);
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<uint32_t>(base + i);
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (parts.score[a] != parts.score[b]) return parts.score[a] > parts.score[b];
      return parts.fwd_instance[a] < parts.fwd_instance[b];
    });
    rank.insert(rank.end(), order.begin(), order.end());
  }

  // Inverse CSR by counting sort; iterating forward pairs in (concept asc,
  // instance asc) order makes every inverse row concept-sorted for free.
  std::vector<uint64_t> inv_rows(ni + 1, 0);
  for (uint32_t e : parts.fwd_instance) inv_rows[e + 1]++;
  for (size_t i = 1; i <= ni; ++i) inv_rows[i] += inv_rows[i - 1];
  std::vector<uint32_t> inv_concept(np, 0);
  std::vector<uint32_t> inv_pair(np, 0);
  {
    std::vector<uint64_t> next(inv_rows.begin(), inv_rows.end() - 1);
    for (size_t ci = 0; ci < nc; ++ci) {
      for (uint64_t j = parts.fwd_rows[ci]; j < parts.fwd_rows[ci + 1]; ++j) {
        uint64_t slot = next[parts.fwd_instance[j]]++;
        inv_concept[slot] = static_cast<uint32_t>(ci);
        inv_pair[slot] = static_cast<uint32_t>(j);
      }
    }
  }

  // Name-sorted permutations for allocation-free name lookup. Ties break by
  // id so the permutation is a pure function of the name tables.
  std::vector<uint32_t> concept_by_name(nc), instance_by_name(ni);
  for (size_t i = 0; i < nc; ++i) concept_by_name[i] = static_cast<uint32_t>(i);
  for (size_t i = 0; i < ni; ++i) instance_by_name[i] = static_cast<uint32_t>(i);
  std::sort(concept_by_name.begin(), concept_by_name.end(),
            [&](uint32_t a, uint32_t b) {
              if (parts.concept_names[a] != parts.concept_names[b]) {
                return parts.concept_names[a] < parts.concept_names[b];
              }
              return a < b;
            });
  std::sort(instance_by_name.begin(), instance_by_name.end(),
            [&](uint32_t a, uint32_t b) {
              if (parts.instance_names[a] != parts.instance_names[b]) {
                return parts.instance_names[a] < parts.instance_names[b];
              }
              return a < b;
            });

  // -- Assemble section payloads --------------------------------------------

  std::string sections[kNumSections];
  sections[kSecConceptNames] = BuildNameSection(
      nc, [&](size_t i) -> const std::string& { return parts.concept_names[i]; });
  sections[kSecInstanceNames] = BuildNameSection(
      ni, [&](size_t i) -> const std::string& { return parts.instance_names[i]; });
  {
    std::string& s = sections[kSecForwardCsr];
    for (uint64_t r : parts.fwd_rows) AppendU64(&s, r);
    for (uint32_t e : parts.fwd_instance) AppendU32(&s, e);
  }
  for (uint32_t r : rank) AppendU32(&sections[kSecRank], r);
  for (double v : parts.score) AppendF64(&sections[kSecScores], v);
  {
    std::string& s = sections[kSecSupport];
    for (uint32_t v : parts.support) AppendU32(&s, v);
    for (uint32_t v : parts.iter1) AppendU32(&s, v);
  }
  {
    std::string& s = sections[kSecInverseCsr];
    for (uint64_t r : inv_rows) AppendU64(&s, r);
    for (uint32_t c : inv_concept) AppendU32(&s, c);
    for (uint32_t p : inv_pair) AppendU32(&s, p);
  }
  sections[kSecConceptMeta].assign(reinterpret_cast<const char*>(parts.flags.data()),
                                   parts.flags.size());
  {
    std::string& s = sections[kSecMutex];
    AppendF64(&s, parts.mutex_threshold);
    AppendF64(&s, parts.similar_threshold);
    AppendU64(&s, parts.mutex_keys.size());
    for (uint64_t k : parts.mutex_keys) AppendU64(&s, k);
    for (double v : parts.mutex_sims) AppendF64(&s, v);
  }
  {
    std::string& s = sections[kSecNameSort];
    for (uint32_t c : concept_by_name) AppendU32(&s, c);
    for (uint32_t e : instance_by_name) AppendU32(&s, e);
  }

  // -- Frame: header, section table, padded payloads, footer ----------------

  size_t offsets[kNumSections];
  size_t cursor = kHeaderBytes + kNumSections * kSectionEntryBytes + 8;
  for (int i = 0; i < kNumSections; ++i) {
    offsets[i] = cursor;
    cursor = Align8(cursor + sections[i].size());
  }
  const uint64_t total_bytes = cursor + kFooterBytes;

  std::string file;
  file.reserve(total_bytes);
  AppendU64(&file, kMagic);
  AppendU32(&file, kVersion);
  AppendU32(&file, kNumSections);
  AppendU64(&file, total_bytes);
  AppendU32(&file, static_cast<uint32_t>(nc));
  AppendU32(&file, static_cast<uint32_t>(ni));
  AppendU64(&file, np);
  AppendU32(&file, Crc32Of(std::string_view(file.data(), file.size())));
  AppendU32(&file, 0);  // pad

  std::string table;
  for (int i = 0; i < kNumSections; ++i) {
    AppendU32(&table, kSectionTags[i]);
    AppendU32(&table, Crc32Of(sections[i]));
    AppendU64(&table, offsets[i]);
    AppendU64(&table, sections[i].size());
  }
  file += table;
  AppendU32(&file, Crc32Of(table));
  AppendU32(&file, 0);  // pad

  for (int i = 0; i < kNumSections; ++i) {
    file += sections[i];
    file.append(Align8(file.size()) - file.size(), '\0');
  }
  AppendU32(&file, Crc32Of(file));
  AppendU32(&file, kEndMagic);
  return file;
}

Status PublishSnapshotImage(const std::string& image, const std::string& path) {
  // Temp-and-rename, same as checkpoints: a torn write can only leave a
  // `.snap-tmp` carcass, never a partial file under the final name.
  std::string tmp = path + ".snap-tmp";
  Status written = WriteStringToFile(image, tmp);
  if (!written.ok()) return written;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot rename " + tmp + " to " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status WriteSnapshot(const KnowledgeBase& kb, const World& world,
                     const RunHealthReport* health, const SnapshotOptions& options,
                     const std::string& path) {
  SnapshotParts parts = CompileSnapshotParts(kb, world, health, options);
  auto image = BuildSnapshotImage(parts);
  if (!image.ok()) return image.status();
  return PublishSnapshotImage(*image, path);
}

// -- Reader ------------------------------------------------------------------

/// An mmap'ed snapshot file. The fd is kept open for the lifetime of the
/// mapping so EnsureSections can re-stat it (truncation detection).
struct SnapshotReader::MappedFile {
  void* base = nullptr;
  size_t length = 0;
  int fd = -1;
  std::string path;

  ~MappedFile() {
    if (base != nullptr) ::munmap(base, length);
    if (fd >= 0) ::close(fd);
  }
};

/// Deferred per-section CRC state. `verified` is a bitmask of sections whose
/// CRC has been checked; the slow path serializes on `mu` so each section is
/// hashed at most once. A failure is sticky (`failed` + `first_error`).
struct SnapshotReader::DeferredVerify {
  std::mutex mu;
  std::atomic<uint32_t> verified{0};
  /// Sections whose CRC check failed. Sticky per section: a corrupt MUTX
  /// payload keeps failing mutex queries while every other section serves.
  std::atomic<uint32_t> failed_sections{0};
  /// Whole-mapping failure (stat error, file resized under the map): the
  /// entire reader is compromised, every EnsureSections call fails.
  std::atomic<bool> failed{false};
  Status first_error;  // Guarded by mu.
  uint64_t offsets[kNumSections] = {};
  uint64_t sizes[kNumSections] = {};
  uint32_t crcs[kNumSections] = {};
};

SnapshotReader::SnapshotReader() = default;
SnapshotReader::~SnapshotReader() = default;
SnapshotReader::SnapshotReader(SnapshotReader&&) noexcept = default;
SnapshotReader& SnapshotReader::operator=(SnapshotReader&&) noexcept = default;

const char* SnapshotReader::data() const {
  return mapped_ != nullptr ? static_cast<const char*>(mapped_->base)
                            : reinterpret_cast<const char*>(buffer_.data());
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  return Open(path, SnapshotOpenOptions{});
}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path,
                                            const SnapshotOpenOptions& options) {
  if (options.source == SnapshotSource::kRead) {
    auto content = ReadFileToString(path);
    if (!content.ok()) return content.status();
    return OpenFromBuffer(*content, path);
  }

  // kMmap. Hardened like ReadFileToString: only regular files are mapped (a
  // directory, FIFO or device node has no meaningful mmap semantics), and
  // the fd is retained so EnsureSections can detect the file being resized
  // under the mapping.
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    Status err = Status::IOError("cannot stat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return err;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::DataLoss(path + ": not a regular file (refusing to mmap)");
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::DataLoss("snapshot " + path + ": file too small (0 bytes)");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (base == MAP_FAILED) {
    Status err = Status::IOError("cannot mmap " + path + ": " + std::strerror(errno));
    ::close(fd);
    return err;
  }

  SnapshotReader reader;
  reader.mapped_ = std::make_unique<MappedFile>();
  reader.mapped_->base = base;
  reader.mapped_->length = size;
  reader.mapped_->fd = fd;
  reader.mapped_->path = path;
  reader.file_bytes_ = size;
  reader.deferred_ = std::make_unique<DeferredVerify>();
  Status mapped = reader.Map(/*defer_section_checks=*/!options.eager_verify);
  if (!mapped.ok()) {
    return Status::DataLoss("snapshot " + path + ": " + mapped.message());
  }
  if (options.eager_verify) {
    reader.deferred_->verified.store(kSnapSecAll, std::memory_order_release);
    Status valid = reader.Validate();
    if (!valid.ok()) {
      return Status::DataLoss("snapshot " + path + ": " + valid.message());
    }
  }
  return reader;
}

Result<SnapshotReader> SnapshotReader::OpenFromBuffer(std::string_view content,
                                                      const std::string& label) {
  SnapshotReader reader;
  reader.file_bytes_ = content.size();
  reader.buffer_.assign((content.size() + 7) / 8, 0);
  std::memcpy(reader.buffer_.data(), content.data(), content.size());
  Status mapped = reader.Map(/*defer_section_checks=*/false);
  if (!mapped.ok()) {
    return Status::DataLoss("snapshot " + label + ": " + mapped.message());
  }
  Status valid = reader.Validate();
  if (!valid.ok()) {
    return Status::DataLoss("snapshot " + label + ": " + valid.message());
  }
  return reader;
}

Status SnapshotReader::EnsureSections(uint32_t mask) const {
  if (deferred_ == nullptr) return Status::OK();
  mask &= kSnapSecAll;
  DeferredVerify& d = *deferred_;
  if (d.failed.load(std::memory_order_acquire) ||
      (d.failed_sections.load(std::memory_order_acquire) & mask) != 0) {
    std::lock_guard<std::mutex> lock(d.mu);
    return d.first_error;
  }
  if ((d.verified.load(std::memory_order_acquire) & mask) == mask) {
    return Status::OK();
  }

  std::lock_guard<std::mutex> lock(d.mu);
  if (d.failed.load(std::memory_order_relaxed) ||
      (d.failed_sections.load(std::memory_order_relaxed) & mask) != 0) {
    return d.first_error;
  }
  uint32_t done = d.verified.load(std::memory_order_relaxed);
  if ((done & mask) == mask) return Status::OK();

  auto fail = [&](Status err) {
    d.first_error = err;
    d.failed.store(true, std::memory_order_release);
    return err;
  };

  // ftruncate-under-map detection: a shrunk file turns reads of the mapped
  // tail into SIGBUS, so re-stat before touching any payload byte.
  struct stat st {};
  if (::fstat(mapped_->fd, &st) != 0) {
    return fail(Status::IOError("cannot stat " + mapped_->path + ": " +
                                std::strerror(errno)));
  }
  if (static_cast<uint64_t>(st.st_size) != file_bytes_) {
    return fail(Status::DataLoss(
        mapped_->path + ": file resized from " + std::to_string(file_bytes_) +
        " to " + std::to_string(st.st_size) + " bytes under the mapping"));
  }

  const char* base = data();
  for (int i = 0; i < kNumSections; ++i) {
    const uint32_t bit = 1u << i;
    if ((mask & bit) == 0 || (done & bit) != 0) continue;
    if (d.crcs[i] != Crc32Of(std::string_view(base + d.offsets[i],
                                              static_cast<size_t>(d.sizes[i])))) {
      // Sticky for this section only: queries touching it keep failing with
      // the same error, while untouched sections stay servable.
      Status err = Status::DataLoss(
          mapped_->path + ": section " + SectionName(i) +
          " checksum mismatch at byte offset " + std::to_string(d.offsets[i]));
      if (d.first_error.ok()) d.first_error = err;
      d.failed_sections.fetch_or(bit, std::memory_order_release);
      return err;
    }
    done |= bit;
    d.verified.store(done, std::memory_order_release);
  }
  return Status::OK();
}

uint32_t SnapshotReader::VerifiedSections() const {
  return deferred_ == nullptr ? static_cast<uint32_t>(kSnapSecAll)
                              : deferred_->verified.load(std::memory_order_acquire);
}

Status SnapshotReader::Map(bool defer_section_checks) {
  const char* base = data();
  const uint64_t size = file_bytes_;
  const size_t table_bytes = kNumSections * kSectionEntryBytes;
  if (size < kHeaderBytes + table_bytes + 8 + kFooterBytes) {
    return Status::DataLoss("file too small (" + std::to_string(size) + " bytes)");
  }
  if (ReadU64(base) != kMagic) return Status::DataLoss("bad magic");
  const uint32_t version = ReadU32(base + 8);
  if (version != kVersion) {
    return Status::DataLoss("unsupported version " + std::to_string(version));
  }
  if (ReadU32(base + 12) != kNumSections) {
    return Status::DataLoss("unexpected section count");
  }
  if (ReadU64(base + 16) != size) {
    return Status::DataLoss("declared size " + std::to_string(ReadU64(base + 16)) +
                            " != actual " + std::to_string(size) +
                            " (torn write?)");
  }
  num_concepts_ = ReadU32(base + 24);
  num_instances_ = ReadU32(base + 28);
  num_pairs_ = ReadU64(base + 32);
  if (ReadU32(base + 40) != Crc32Of(std::string_view(base, 40))) {
    return Status::DataLoss("header checksum mismatch");
  }
  // Whole-file CRC first: one check that covers padding and the table too.
  // Deferred (mmap) opens skip it — it would fault every page in, and the
  // header/table CRCs plus the per-section deferred CRCs cover every byte
  // that is ever read.
  if (!defer_section_checks &&
      ReadU32(base + size - 8) !=
          Crc32Of(std::string_view(base, static_cast<size_t>(size - 8)))) {
    return Status::DataLoss("file checksum mismatch");
  }
  if (ReadU32(base + size - 4) != kEndMagic) {
    return Status::DataLoss("missing end marker (torn write?)");
  }
  if (ReadU32(base + kHeaderBytes + table_bytes) !=
      Crc32Of(std::string_view(base + kHeaderBytes, table_bytes))) {
    return Status::DataLoss("section table checksum mismatch");
  }

  uint64_t offsets[kNumSections];
  uint64_t sizes[kNumSections];
  for (int i = 0; i < kNumSections; ++i) {
    const char* entry = base + kHeaderBytes + i * kSectionEntryBytes;
    if (ReadU32(entry) != kSectionTags[i]) {
      return Status::DataLoss("section " + std::to_string(i) + " has wrong tag");
    }
    offsets[i] = ReadU64(entry + 8);
    sizes[i] = ReadU64(entry + 16);
    if (offsets[i] % 8 != 0 || offsets[i] > size - kFooterBytes ||
        sizes[i] > size - kFooterBytes - offsets[i]) {
      return Status::DataLoss("section " + std::to_string(i) +
                              " extends past the file");
    }
    if (defer_section_checks) {
      deferred_->offsets[i] = offsets[i];
      deferred_->sizes[i] = sizes[i];
      deferred_->crcs[i] = ReadU32(entry + 4);
    } else if (ReadU32(entry + 4) !=
               Crc32Of(std::string_view(base + offsets[i],
                                        static_cast<size_t>(sizes[i])))) {
      return Status::DataLoss("section " + std::to_string(i) +
                              " checksum mismatch");
    }
  }

  const uint64_t nc = num_concepts_;
  const uint64_t ni = num_instances_;
  const uint64_t np = num_pairs_;
  auto expect = [&](int sec, uint64_t want) -> Status {
    if (sizes[sec] != want) {
      return Status::DataLoss("section " + std::to_string(sec) + " size " +
                              std::to_string(sizes[sec]) + " != expected " +
                              std::to_string(want));
    }
    return Status::OK();
  };

  if (sizes[kSecConceptNames] < 4 * (nc + 1)) {
    return Status::DataLoss("concept name table shorter than its offset array");
  }
  concept_name_offsets_ =
      reinterpret_cast<const uint32_t*>(base + offsets[kSecConceptNames]);
  concept_name_blob_ =
      base + offsets[kSecConceptNames] + 4 * (nc + 1);
  concept_blob_bytes_ = sizes[kSecConceptNames] - 4 * (nc + 1);

  if (sizes[kSecInstanceNames] < 4 * (ni + 1)) {
    return Status::DataLoss("instance name table shorter than its offset array");
  }
  instance_name_offsets_ =
      reinterpret_cast<const uint32_t*>(base + offsets[kSecInstanceNames]);
  instance_name_blob_ = base + offsets[kSecInstanceNames] + 4 * (ni + 1);
  instance_blob_bytes_ = sizes[kSecInstanceNames] - 4 * (ni + 1);

  Status s = expect(kSecForwardCsr, 8 * (nc + 1) + 4 * np);
  if (!s.ok()) return s;
  fwd_rows_ = reinterpret_cast<const uint64_t*>(base + offsets[kSecForwardCsr]);
  fwd_instance_ = reinterpret_cast<const uint32_t*>(base + offsets[kSecForwardCsr] +
                                                    8 * (nc + 1));

  s = expect(kSecRank, 4 * np);
  if (!s.ok()) return s;
  rank_ = reinterpret_cast<const uint32_t*>(base + offsets[kSecRank]);

  s = expect(kSecScores, 8 * np);
  if (!s.ok()) return s;
  score_ = reinterpret_cast<const double*>(base + offsets[kSecScores]);

  s = expect(kSecSupport, 8 * np);
  if (!s.ok()) return s;
  support_ = reinterpret_cast<const uint32_t*>(base + offsets[kSecSupport]);
  iter1_ = reinterpret_cast<const uint32_t*>(base + offsets[kSecSupport] + 4 * np);

  s = expect(kSecInverseCsr, 8 * (ni + 1) + 8 * np);
  if (!s.ok()) return s;
  inv_rows_ = reinterpret_cast<const uint64_t*>(base + offsets[kSecInverseCsr]);
  inv_concept_ = reinterpret_cast<const uint32_t*>(base + offsets[kSecInverseCsr] +
                                                   8 * (ni + 1));
  inv_pair_ = reinterpret_cast<const uint32_t*>(base + offsets[kSecInverseCsr] +
                                                8 * (ni + 1) + 4 * np);

  s = expect(kSecConceptMeta, nc);
  if (!s.ok()) return s;
  concept_flags_ = reinterpret_cast<const uint8_t*>(base + offsets[kSecConceptMeta]);

  if (sizes[kSecMutex] < 24 || (sizes[kSecMutex] - 24) % 16 != 0) {
    return Status::DataLoss("mutex table has impossible size");
  }
  {
    const char* m = base + offsets[kSecMutex];
    uint64_t bits = ReadU64(m);
    std::memcpy(&mutex_threshold_, &bits, 8);
    bits = ReadU64(m + 8);
    std::memcpy(&similar_threshold_, &bits, 8);
    num_mutex_ = ReadU64(m + 16);
    if (num_mutex_ != (sizes[kSecMutex] - 24) / 16) {
      return Status::DataLoss("mutex table count disagrees with its size");
    }
    mutex_keys_ = reinterpret_cast<const uint64_t*>(m + 24);
    mutex_sims_ = reinterpret_cast<const double*>(m + 24 + 8 * num_mutex_);
  }

  s = expect(kSecNameSort, 4 * nc + 4 * ni);
  if (!s.ok()) return s;
  concept_by_name_ = reinterpret_cast<const uint32_t*>(base + offsets[kSecNameSort]);
  instance_by_name_ =
      reinterpret_cast<const uint32_t*>(base + offsets[kSecNameSort] + 4 * nc);
  return Status::OK();
}

Status SnapshotReader::Validate() const {
  const uint64_t nc = num_concepts_;
  const uint64_t ni = num_instances_;
  const uint64_t np = num_pairs_;

  // String tables: monotone offsets ending exactly at the blob size.
  auto check_names = [](const uint32_t* offsets, uint64_t n, uint64_t blob_bytes,
                        const char* what) -> Status {
    if (offsets[0] != 0) {
      return Status::DataLoss(std::string(what) + " name offsets do not start at 0");
    }
    for (uint64_t i = 0; i < n; ++i) {
      if (offsets[i + 1] < offsets[i]) {
        return Status::DataLoss(std::string(what) + " name offsets not monotone at " +
                                std::to_string(i));
      }
    }
    if (offsets[n] != blob_bytes) {
      return Status::DataLoss(std::string(what) + " name blob bounds mismatch");
    }
    return Status::OK();
  };
  Status s = check_names(concept_name_offsets_, nc, concept_blob_bytes_, "concept");
  if (!s.ok()) return s;
  s = check_names(instance_name_offsets_, ni, instance_blob_bytes_, "instance");
  if (!s.ok()) return s;

  // Forward CSR: monotone rows covering exactly np, instance ids in range
  // and strictly increasing within a row.
  if (fwd_rows_[0] != 0 || fwd_rows_[nc] != np) {
    return Status::DataLoss("forward CSR rows do not cover the pair array");
  }
  for (uint64_t c = 0; c < nc; ++c) {
    if (fwd_rows_[c + 1] < fwd_rows_[c]) {
      return Status::DataLoss("forward CSR rows not monotone at concept " +
                              std::to_string(c));
    }
    for (uint64_t j = fwd_rows_[c]; j < fwd_rows_[c + 1]; ++j) {
      if (fwd_instance_[j] >= ni) {
        return Status::DataLoss("pair " + std::to_string(j) +
                                " references instance out of range");
      }
      if (j > fwd_rows_[c] && fwd_instance_[j] <= fwd_instance_[j - 1]) {
        return Status::DataLoss("forward row of concept " + std::to_string(c) +
                                " not strictly sorted by instance");
      }
    }
  }

  // Score column must be finite (the writer stores checked scores).
  for (uint64_t j = 0; j < np; ++j) {
    double v = score_[j];
    if (!(v == v) || v - v != 0.0) {
      return Status::DataLoss("non-finite score at pair " + std::to_string(j));
    }
  }

  // Rank: each concept slice is a permutation of its row, ordered by
  // (score desc, instance asc).
  {
    std::vector<uint8_t> seen(np, 0);
    for (uint64_t c = 0; c < nc; ++c) {
      for (uint64_t j = fwd_rows_[c]; j < fwd_rows_[c + 1]; ++j) {
        uint32_t p = rank_[j];
        if (p < fwd_rows_[c] || p >= fwd_rows_[c + 1]) {
          return Status::DataLoss("rank entry escapes its concept row at " +
                                  std::to_string(j));
        }
        if (seen[p]) {
          return Status::DataLoss("rank entry duplicated at " + std::to_string(j));
        }
        seen[p] = 1;
        if (j > fwd_rows_[c]) {
          uint32_t prev = rank_[j - 1];
          if (score_[p] > score_[prev] ||
              (score_[p] == score_[prev] &&
               fwd_instance_[p] <= fwd_instance_[prev])) {
            return Status::DataLoss("rank order violated at " + std::to_string(j));
          }
        }
      }
    }
  }

  // Inverse CSR: monotone, in-range, concept-sorted rows whose entries agree
  // with the forward index pair for pair.
  if (inv_rows_[0] != 0 || inv_rows_[ni] != np) {
    return Status::DataLoss("inverse CSR rows do not cover the pair array");
  }
  {
    std::vector<uint8_t> seen(np, 0);
    for (uint64_t e = 0; e < ni; ++e) {
      if (inv_rows_[e + 1] < inv_rows_[e]) {
        return Status::DataLoss("inverse CSR rows not monotone at instance " +
                                std::to_string(e));
      }
      for (uint64_t i = inv_rows_[e]; i < inv_rows_[e + 1]; ++i) {
        uint32_t c = inv_concept_[i];
        uint32_t p = inv_pair_[i];
        if (c >= nc || p >= np) {
          return Status::DataLoss("inverse entry out of range at " +
                                  std::to_string(i));
        }
        if (seen[p]) {
          return Status::DataLoss("inverse entry reuses pair " + std::to_string(p));
        }
        seen[p] = 1;
        if (p < fwd_rows_[c] || p >= fwd_rows_[c + 1] || fwd_instance_[p] != e) {
          return Status::DataLoss("inverse entry disagrees with forward pair " +
                                  std::to_string(p));
        }
        if (i > inv_rows_[e] && inv_concept_[i] <= inv_concept_[i - 1]) {
          return Status::DataLoss("inverse row of instance " + std::to_string(e) +
                                  " not strictly sorted by concept");
        }
      }
    }
  }

  // Mutex table: strictly increasing keys of distinct in-range concepts,
  // finite non-negative similarities.
  for (uint64_t i = 0; i < num_mutex_; ++i) {
    uint32_t lo = static_cast<uint32_t>(mutex_keys_[i] >> 32);
    uint32_t hi = static_cast<uint32_t>(mutex_keys_[i] & 0xffffffffu);
    if (lo >= hi || hi >= nc) {
      return Status::DataLoss("mutex key out of range at " + std::to_string(i));
    }
    if (i > 0 && mutex_keys_[i] <= mutex_keys_[i - 1]) {
      return Status::DataLoss("mutex keys not strictly sorted at " +
                              std::to_string(i));
    }
    double v = mutex_sims_[i];
    if (!(v == v) || v - v != 0.0 || v < 0.0) {
      return Status::DataLoss("mutex similarity invalid at " + std::to_string(i));
    }
  }

  // Name-sort arrays: true permutations in non-descending name order.
  auto check_perm = [this](const uint32_t* perm, uint64_t n, bool concepts,
                           const char* what) -> Status {
    std::vector<uint8_t> seen(n, 0);
    for (uint64_t i = 0; i < n; ++i) {
      if (perm[i] >= n || seen[perm[i]]) {
        return Status::DataLoss(std::string(what) +
                                " name-sort array is not a permutation");
      }
      seen[perm[i]] = 1;
      if (i > 0) {
        std::string_view prev = concepts ? ConceptName(perm[i - 1])
                                         : InstanceName(perm[i - 1]);
        std::string_view cur =
            concepts ? ConceptName(perm[i]) : InstanceName(perm[i]);
        if (cur < prev) {
          return Status::DataLoss(std::string(what) +
                                  " name-sort array is out of order");
        }
      }
    }
    return Status::OK();
  };
  s = check_perm(concept_by_name_, nc, true, "concept");
  if (!s.ok()) return s;
  s = check_perm(instance_by_name_, ni, false, "instance");
  if (!s.ok()) return s;
  return Status::OK();
}

uint32_t SnapshotReader::FindConcept(std::string_view name) const {
  const uint32_t* begin = concept_by_name_;
  const uint32_t* end = begin + num_concepts_;
  const uint32_t* it = std::lower_bound(
      begin, end, name,
      [this](uint32_t id, std::string_view n) { return ConceptName(id) < n; });
  if (it == end || ConceptName(*it) != name) return kNoId;
  return *it;
}

uint32_t SnapshotReader::FindInstance(std::string_view name) const {
  const uint32_t* begin = instance_by_name_;
  const uint32_t* end = begin + num_instances_;
  const uint32_t* it = std::lower_bound(
      begin, end, name,
      [this](uint32_t id, std::string_view n) { return InstanceName(id) < n; });
  if (it == end || InstanceName(*it) != name) return kNoId;
  return *it;
}

uint64_t SnapshotReader::FindPair(uint32_t c, uint32_t e) const {
  const uint32_t* begin = fwd_instance_ + fwd_rows_[c];
  const uint32_t* end = fwd_instance_ + fwd_rows_[c + 1];
  const uint32_t* it = std::lower_bound(begin, end, e);
  if (it == end || *it != e) return kNoPair;
  return static_cast<uint64_t>(it - fwd_instance_);
}

double SnapshotReader::EffectiveSim(uint32_t a, uint32_t b) const {
  if (a == b) return 1.0;
  uint64_t key = MutexKey(a, b);
  const uint64_t* end = mutex_keys_ + num_mutex_;
  const uint64_t* it = std::lower_bound(mutex_keys_, end, key);
  if (it == end || *it != key) return 0.0;
  return mutex_sims_[it - mutex_keys_];
}

bool SnapshotReader::IsMutex(uint32_t a, uint32_t b) const {
  if (a == b || a >= num_concepts_ || b >= num_concepts_) return false;
  if (!MutexUsable(a) || !MutexUsable(b)) return false;
  return EffectiveSim(a, b) < mutex_threshold_;
}

SnapshotParts PartsFromReader(const SnapshotReader& reader) {
  SnapshotParts parts;
  const uint32_t nc = reader.num_concepts();
  const uint32_t ni = reader.num_instances();
  const uint64_t np = reader.num_pairs();
  parts.concept_names.reserve(nc);
  for (uint32_t c = 0; c < nc; ++c) {
    parts.concept_names.emplace_back(reader.ConceptName(c));
  }
  parts.instance_names.reserve(ni);
  for (uint32_t e = 0; e < ni; ++e) {
    parts.instance_names.emplace_back(reader.InstanceName(e));
  }
  parts.fwd_rows.reserve(nc + 1);
  parts.fwd_rows.push_back(0);
  for (uint32_t c = 0; c < nc; ++c) parts.fwd_rows.push_back(reader.ConceptEnd(c));
  parts.fwd_instance.reserve(np);
  parts.score.reserve(np);
  parts.support.reserve(np);
  parts.iter1.reserve(np);
  for (uint64_t p = 0; p < np; ++p) {
    parts.fwd_instance.push_back(reader.PairInstance(p));
    parts.score.push_back(reader.PairScore(p));
    parts.support.push_back(reader.PairSupport(p));
    parts.iter1.push_back(reader.PairIter1(p));
  }
  parts.flags.reserve(nc);
  for (uint32_t c = 0; c < nc; ++c) {
    uint8_t f = 0;
    if (reader.ConceptQuarantined(c)) f |= 1u;
    if (reader.MutexUsable(c)) f |= 2u;
    parts.flags.push_back(f);
  }
  parts.mutex_threshold = reader.mutex_threshold();
  parts.similar_threshold = reader.similar_threshold();
  const uint64_t nm = reader.num_mutex_pairs();
  parts.mutex_keys.reserve(nm);
  parts.mutex_sims.reserve(nm);
  for (uint64_t i = 0; i < nm; ++i) {
    parts.mutex_keys.push_back(reader.MutexKeyAt(i));
    parts.mutex_sims.push_back(reader.MutexSimAt(i));
  }
  return parts;
}

}  // namespace semdrift
