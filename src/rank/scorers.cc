#include "rank/scorers.h"

#include <chrono>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace semdrift {

namespace {

/// Normalizes `v` to sum to 1 in place (no-op on an all-zero vector).
void NormalizeL1(std::vector<double>* v) {
  double total = std::accumulate(v->begin(), v->end(), 0.0);
  if (total <= 0.0) return;
  for (double& x : *v) x /= total;
}

std::vector<double> FrequencyScores(const ConceptGraph& graph) {
  std::vector<double> scores = graph.node_counts();
  NormalizeL1(&scores);
  return scores;
}

/// Power iteration for a teleporting walk over CSR adjacency. `restart`
/// must be L1-normalized; rows are stochasticized on the fly via the
/// precomputed `out_degrees`; dangling mass teleports.
std::vector<double> TeleportingWalk(const std::vector<size_t>& offsets,
                                    const std::vector<uint32_t>& targets,
                                    const std::vector<double>& weights,
                                    const std::vector<double>& out_degrees,
                                    const std::vector<double>& restart,
                                    const WalkParams& params,
                                    WalkOutcome* outcome) {
  size_t n = out_degrees.size();
  std::vector<double> p = restart;
  std::vector<double> next(n, 0.0);
  bool converged = (n == 0);  // Nothing to converge on an empty graph.
  int iterations = 0;
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    // Cooperative cancellation: one poll per power iteration is the
    // granularity at which a supervised deadline can stop a runaway walk.
    PollCancellation("teleporting walk");
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (p[i] == 0.0) continue;
      if (out_degrees[i] <= 0.0) {
        dangling += p[i];
        continue;
      }
      double share = p[i] / out_degrees[i];
      for (size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
        next[targets[e]] += share * weights[e];
      }
    }
    double l1 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double value = (1.0 - params.teleport) * (next[i] + dangling * restart[i]) +
                     params.teleport * restart[i];
      l1 += std::abs(value - p[i]);
      next[i] = value;
    }
    p.swap(next);
    iterations = iter + 1;
    if (l1 < params.tolerance) {
      converged = true;
      break;
    }
  }
  if (outcome != nullptr) {
    outcome->converged = converged;
    outcome->iterations = iterations;
  }
  return p;
}

std::vector<double> RandomWalkScores(const ConceptGraph& graph,
                                     const WalkParams& params,
                                     WalkOutcome* outcome) {
  std::vector<double> restart = graph.root_weights();
  double total = std::accumulate(restart.begin(), restart.end(), 0.0);
  if (total <= 0.0) {
    // Degenerate concept with no iteration-1 roots: restart uniformly.
    restart.assign(graph.num_nodes(), graph.num_nodes() ? 1.0 / graph.num_nodes() : 0.0);
  } else {
    for (double& w : restart) w /= total;
  }
  // The walk consumes the graph's own CSR arrays — no per-call copy.
  return TeleportingWalk(graph.edge_offsets(), graph.edge_targets(),
                         graph.edge_weights(), graph.out_degrees(), restart, params,
                         outcome);
}

std::vector<double> PageRankScores(const ConceptGraph& graph,
                                   const WalkParams& params,
                                   WalkOutcome* outcome) {
  size_t n = graph.num_nodes();
  // Undirected: symmetrize the edge set (the paper's PageRank baseline uses
  // the same graph with undirected edges and uniform teleportation). Rows
  // keep the historical append order — reverse edges from lower-indexed
  // sources, own edges, reverse edges from higher-indexed sources — so the
  // walk's accumulation order (and hence its floating-point result) is
  // unchanged.
  std::vector<std::vector<std::pair<uint32_t, double>>> rows(n);
  for (size_t i = 0; i < n; ++i) {
    ConceptGraph::OutEdgeSpan edges = graph.OutEdges(i);
    for (size_t e = 0; e < edges.size(); ++e) {
      rows[i].emplace_back(edges.targets[e], edges.weights[e]);
      rows[edges.targets[e]].emplace_back(static_cast<uint32_t>(i), edges.weights[e]);
    }
  }
  std::vector<size_t> offsets(n + 1, 0);
  std::vector<uint32_t> targets;
  std::vector<double> weights;
  std::vector<double> out_degrees(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    offsets[i + 1] = offsets[i] + rows[i].size();
    for (const auto& [to, w] : rows[i]) {
      targets.push_back(to);
      weights.push_back(w);
      out_degrees[i] += w;
    }
  }
  std::vector<double> restart(n, n ? 1.0 / n : 0.0);
  return TeleportingWalk(offsets, targets, weights, out_degrees, restart, params,
                         outcome);
}

}  // namespace

std::vector<double> ScoreGraph(const ConceptGraph& graph, RankModel model,
                               const WalkParams& params, WalkOutcome* outcome) {
  switch (model) {
    case RankModel::kFrequency:
      return FrequencyScores(graph);
    case RankModel::kPageRank:
      return PageRankScores(graph, params, outcome);
    case RankModel::kRandomWalk:
      return RandomWalkScores(graph, params, outcome);
  }
  return {};
}

std::unordered_map<InstanceId, double> ScoreConcept(const KnowledgeBase& kb,
                                                    ConceptId c, RankModel model,
                                                    const WalkParams& params) {
  ConceptGraph graph = ConceptGraph::Build(kb, c);
  std::vector<double> scores = ScoreGraph(graph, model, params);
  std::unordered_map<InstanceId, double> out;
  out.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) out.emplace(graph.node(i), scores[i]);
  return out;
}

ConceptScores ScoreConceptChecked(const KnowledgeBase& kb, ConceptId c,
                                  RankModel model, const WalkParams& params) {
  ConceptGraph graph = ConceptGraph::Build(kb, c);
  WalkOutcome walk;
  std::vector<double> scores = ScoreGraph(graph, model, params, &walk);
  ConceptScores out;
  out.converged = walk.converged;
  out.iterations = walk.iterations;
  if (!walk.converged) {
    // Only a non-converged vector gets sanitized: it can carry overshoot or
    // non-finite junk. A converged result is returned untouched, keeping the
    // checked path bit-identical to ScoreConcept when nothing went wrong.
    for (double& s : scores) {
      if (!(s == s) || s - s != 0.0) {
        s = 0.0;  // NaN / +-Inf.
      } else if (s < 0.0) {
        s = 0.0;
      } else if (s > 1.0) {
        s = 1.0;
      }
    }
  }
  out.scores.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    out.scores.emplace(graph.node(i), scores[i]);
  }
  return out;
}

double ScoreCache::Get(ConceptId c, InstanceId e) const {
  const auto& scores = Concept(c);
  auto it = scores.find(e);
  return it == scores.end() ? 0.0 : it->second;
}

const std::unordered_map<InstanceId, double>& ScoreCache::Concept(ConceptId c) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(c.value);
    if (it != cache_.end()) return *it->second;
  }
  // Compute outside the lock so concurrent misses on *different* concepts
  // don't serialize on one walk. A racing duplicate computation of the same
  // concept yields the identical map (scoring is deterministic); the first
  // insert wins and the loser is discarded.
  auto computed = std::make_unique<std::unordered_map<InstanceId, double>>(
      ScoreConcept(*kb_, c, model_, params_));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(c.value, std::move(computed));
  (void)inserted;
  return *it->second;
}

void ScoreCache::Warm(const std::vector<ConceptId>& concepts) {
  // Skip concepts already cached, then build the rest concurrently — each
  // concept's graph build + walk is independent. Results are inserted in
  // input order (ordered reduction), so the cache's contents are identical
  // for every thread count.
  std::vector<ConceptId> missing;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ConceptId c : concepts) {
      if (cache_.find(c.value) == cache_.end()) missing.push_back(c);
    }
  }
  if (missing.empty()) return;
  // Per-concept timing comes from the workers (order-free atomics); the
  // driver-side span covers the whole warm batch.
  static MetricsRegistry::Counter warm_concepts =
      GlobalMetrics().RegisterCounter("warm.concepts");
  static MetricsRegistry::Histogram warm_concept_ns =
      GlobalMetrics().RegisterHistogram("warm.concept_ns", LatencyBucketsNs());
  ScopedSpan span(&GlobalTrace(), "warm.batch");
  span.AddTag("concepts", static_cast<uint64_t>(missing.size()));
  auto computed =
      ParallelMap<std::unordered_map<InstanceId, double>>(missing.size(), [&](size_t i) {
        auto start = std::chrono::steady_clock::now();
        auto scores = ScoreConcept(*kb_, missing[i], model_, params_);
        warm_concepts.Add();
        warm_concept_ns.Observe(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
        return scores;
      });
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < missing.size(); ++i) {
    cache_.emplace(missing[i].value,
                   std::make_unique<std::unordered_map<InstanceId, double>>(
                       std::move(computed[i])));
  }
}

void ScoreCache::Insert(ConceptId c, std::unordered_map<InstanceId, double> scores) {
  std::lock_guard<std::mutex> lock(mu_);
  // emplace is first-insert-wins: an already-cached concept keeps its map.
  cache_.emplace(c.value, std::make_unique<std::unordered_map<InstanceId, double>>(
                              std::move(scores)));
}

}  // namespace semdrift
