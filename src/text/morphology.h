#ifndef SEMDRIFT_TEXT_MORPHOLOGY_H_
#define SEMDRIFT_TEXT_MORPHOLOGY_H_

#include <string>
#include <string_view>

namespace semdrift {

/// English noun-number morphology, sufficient for the Hearst-pattern corpus:
/// the generator pluralizes concept head nouns when rendering ("animal" ->
/// "animals such as ...") and the parser singularizes candidate heads before
/// vocabulary lookup. Handles the common irregulars the paper's 20 evaluation
/// concepts need ("child" -> "children", "woman" -> "women", ...) plus the
/// regular -s / -es / -ies rules. Multi-word terms pluralize their final word.
std::string Pluralize(std::string_view singular);

/// Inverse of Pluralize for forms it produces. Returns the input unchanged
/// when no rule applies (already-singular words pass through).
std::string Singularize(std::string_view plural);

}  // namespace semdrift

#endif  // SEMDRIFT_TEXT_MORPHOLOGY_H_
