#include "eval/experiment.h"

#include <algorithm>

namespace semdrift {

ExperimentConfig PaperScaleConfig(double scale) {
  ExperimentConfig config;
  // The concept universe stays fixed while the sentence budget scales: what
  // drives drift is the *coverage ratio* (sentences per concept member),
  // which the paper's corpus keeps very thin (326M sentences over 13.5M
  // concepts). Shrinking both together would saturate coverage and suppress
  // drift.
  config.world.num_concepts = 240;
  config.world.named_concepts = PaperEvaluationConcepts();
  config.corpus.num_sentences = std::max(4000, static_cast<int>(120000 * scale));
  config.corpus.render_text = scale <= 0.3;  // Big corpora skip surface text.
  return config;
}

Experiment::Experiment(ExperimentConfig config, World world, Corpus corpus)
    : config_(std::move(config)), world_(std::move(world)), corpus_(std::move(corpus)) {
  truth_ = std::make_unique<GroundTruth>(&world_);
}

std::unique_ptr<Experiment> Experiment::Build(const ExperimentConfig& config) {
  Rng world_rng(config.seed);
  World world = GenerateWorld(config.world, &world_rng);
  Rng corpus_rng(config.seed ^ 0x5bd1e995ULL);
  Corpus corpus = GenerateCorpus(world, config.corpus, &corpus_rng);
  return std::unique_ptr<Experiment>(
      new Experiment(config, std::move(world), std::move(corpus)));
}

KnowledgeBase Experiment::Extract(
    std::vector<IterationStats>* stats,
    const std::function<void(const IterationStats&, const KnowledgeBase&)>&
        on_iteration) const {
  KnowledgeBase kb;
  IterativeExtractor extractor(&corpus_.sentences, config_.extractor);
  std::vector<IterationStats> local = extractor.Run(&kb, on_iteration);
  if (stats != nullptr) *stats = std::move(local);
  return kb;
}

Result<KnowledgeBase> Experiment::ExtractWithCheckpoints(
    CheckpointConfig checkpoint, std::vector<IterationStats>* stats,
    const std::function<void(const IterationStats&, const KnowledgeBase&)>&
        on_iteration) const {
  checkpoint.num_concepts = world_.num_concepts();
  checkpoint.num_sentences = corpus_.sentences.size();
  KnowledgeBase kb;
  IterativeExtractor extractor(&corpus_.sentences, config_.extractor);
  auto local = RunWithCheckpoints(&extractor, &kb, checkpoint, on_iteration);
  if (!local.ok()) return local.status();
  if (stats != nullptr) *stats = std::move(*local);
  return kb;
}

VerifiedSource Experiment::MakeVerifiedSource() const {
  const World* world = &world_;
  return [world](const IsAPair& pair) {
    return world->IsVerified(pair.concept_id, pair.instance);
  };
}

std::vector<ConceptId> Experiment::EvalConcepts() const {
  std::vector<ConceptId> out;
  int n = std::min<int>(config_.num_eval_concepts,
                        static_cast<int>(world_.num_concepts()));
  for (int i = 0; i < n; ++i) out.push_back(ConceptId(static_cast<uint32_t>(i)));
  return out;
}

std::vector<ConceptId> Experiment::AllConcepts() const {
  std::vector<ConceptId> out;
  for (size_t i = 0; i < world_.num_concepts(); ++i) {
    out.push_back(ConceptId(static_cast<uint32_t>(i)));
  }
  return out;
}

}  // namespace semdrift
