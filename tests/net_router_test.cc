#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "net/router.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_manager.h"
#include "testing/random_structures.h"

namespace semdrift {
namespace {

/// Blocking ask for tests (the router itself never blocks).
std::string Ask(ShardRouter& router, const std::string& line,
                RequestPriority priority = RequestPriority::kNormal) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  router.Submit(line, priority,
                [&promise](std::string r) { promise.set_value(std::move(r)); });
  return future.get();
}

/// Pulls `count:` for one verb out of a stats response line.
uint64_t StatsCount(const std::string& stats, const std::string& verb) {
  const std::string needle = verb + "=count:";
  const size_t pos = stats.find(needle);
  EXPECT_NE(pos, std::string::npos) << stats;
  if (pos == std::string::npos) return ~0ull;
  return std::stoull(stats.substr(pos + needle.size()));
}

class RouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    World world = property::RandomWorld(7);
    size_t ns = 0;
    KnowledgeBase kb_a = property::RandomKb(world, 7, &ns);
    KnowledgeBase kb_b = property::RandomKb(world, 1007, &ns);
    auto image_a = BuildSnapshotImage(
        CompileSnapshotParts(kb_a, world, nullptr, SnapshotOptions{}));
    auto image_b = BuildSnapshotImage(
        CompileSnapshotParts(kb_b, world, nullptr, SnapshotOptions{}));
    ASSERT_TRUE(image_a.ok() && image_b.ok());
    image_a_ = new std::string(std::move(*image_a));
    image_b_ = new std::string(std::move(*image_b));
    auto reader = SnapshotReader::OpenFromBuffer(*image_a_, "router-fixture");
    ASSERT_TRUE(reader.ok());
    reader_ = new SnapshotReader(std::move(*reader));

    workload_ = new std::vector<std::string>();
    concepts_ = new std::vector<std::string>();
    for (uint32_t c = 0; c < reader_->num_concepts(); ++c) {
      const std::string name(reader_->ConceptName(c));
      concepts_->push_back(name);
      workload_->push_back("instances-of\t" + name + "\t4");
      if (reader_->ConceptEnd(c) > reader_->ConceptBegin(c)) {
        const std::string member(
            reader_->InstanceName(reader_->PairInstance(reader_->ConceptBegin(c))));
        workload_->push_back("is-a\t" + member + "\t" + name);
        workload_->push_back("concepts-of\t" + member);
        workload_->push_back("drift-score\t" + member + "\t" + name);
      }
    }
    ASSERT_GT(workload_->size(), 8u);
    ASSERT_GE(concepts_->size(), 2u);
  }
  static void TearDownTestSuite() {
    delete reader_;
    delete image_a_;
    delete image_b_;
    delete workload_;
    delete concepts_;
  }

  static std::string* image_a_;
  static std::string* image_b_;
  static SnapshotReader* reader_;
  static std::vector<std::string>* workload_;
  static std::vector<std::string>* concepts_;
};

std::string* RouterTest::image_a_ = nullptr;
std::string* RouterTest::image_b_ = nullptr;
SnapshotReader* RouterTest::reader_ = nullptr;
std::vector<std::string>* RouterTest::workload_ = nullptr;
std::vector<std::string>* RouterTest::concepts_ = nullptr;

TEST_F(RouterTest, ByteIdenticalToDirectEngineAtEveryShardCount) {
  QueryEngine direct(reader_);
  for (uint32_t shards : {1u, 2u, 4u}) {
    RouterOptions options;
    options.num_shards = shards;
    ShardRouter router(reader_, options);
    for (const std::string& line : *workload_) {
      EXPECT_EQ(Ask(router, line), direct.Answer(line))
          << "shards=" << shards << " line=" << line;
    }
  }
}

TEST_F(RouterTest, MergedStatsCountEveryRequestExactlyOnce) {
  RouterOptions options;
  options.num_shards = 4;
  ShardRouter router(reader_, options);
  uint64_t instances_of = 0;
  for (const std::string& line : *workload_) {
    Ask(router, line);
    if (line.rfind("instances-of", 0) == 0) instances_of++;
  }
  // Scatter-gathered mutex queries must also count once (the shadow leg
  // answers with record_stats=false).
  uint64_t mutex_count = 0;
  for (size_t i = 0; i + 1 < concepts_->size() && mutex_count < 6; i += 2) {
    Ask(router, "mutex\t" + (*concepts_)[i] + "\t" + (*concepts_)[i + 1]);
    mutex_count++;
  }
  const std::string stats = Ask(router, "stats");
  ASSERT_EQ(stats.rfind("OK\tstats", 0), 0u) << stats;
  EXPECT_EQ(StatsCount(stats, "instances-of"), instances_of);
  EXPECT_EQ(StatsCount(stats, "mutex"), mutex_count);
  EXPECT_NE(stats.find("\tshards=4"), std::string::npos) << stats;
}

TEST_F(RouterTest, MutexFanoutAgreesAcrossShards) {
  RouterOptions options;
  options.num_shards = 4;
  ShardRouter router(reader_, options);
  uint64_t fanned = 0;
  for (size_t i = 0; i < concepts_->size(); ++i) {
    for (size_t j = i + 1; j < concepts_->size() && fanned < 10; ++j) {
      if (router.OwnerOf((*concepts_)[i]) == router.OwnerOf((*concepts_)[j])) {
        continue;
      }
      const std::string line = "mutex\t" + (*concepts_)[i] + "\t" + (*concepts_)[j];
      QueryEngine direct(reader_);
      EXPECT_EQ(Ask(router, line), direct.Answer(line));
      fanned++;
    }
  }
  ASSERT_GT(fanned, 0u) << "no concept pair split across shards";
  const RouterStats stats = router.Snapshot();
  EXPECT_GE(stats.fanout, fanned);
  // Both shards answer from the same immutable snapshot: any mismatch is a
  // determinism bug, and this tripwire is exactly why the shadow leg runs.
  EXPECT_EQ(stats.fanout_mismatch, 0u);
}

TEST_F(RouterTest, MetricsAnsweredInline) {
  RouterOptions options;
  options.num_shards = 2;
  ShardRouter router(reader_, options);
  const std::string response = Ask(router, "metrics");
  EXPECT_EQ(response.rfind("OK\t{", 0), 0u) << response.substr(0, 40);
  EXPECT_EQ(router.Snapshot().local, 1u);
}

TEST_F(RouterTest, HotSwapPropagatesToEveryShard) {
  const std::string dir =
      ::testing::TempDir() + "/router_hotswap";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  ASSERT_TRUE(PublishSnapshotImage(*image_a_, dir + "/snap-1.bin").ok());

  SnapshotManagerOptions manager_options;
  manager_options.dir = dir;
  manager_options.backoff_base_ms = 0;
  SnapshotManager manager(manager_options);
  ASSERT_TRUE(manager.LoadInitial().ok());

  RouterOptions options;
  options.num_shards = 4;
  ShardRouter router(&manager, options);
  EXPECT_EQ(router.generation(), 1u);

  auto reader_b = SnapshotReader::OpenFromBuffer(*image_b_, "gen2");
  ASSERT_TRUE(reader_b.ok());
  QueryEngine engine_a(reader_);
  QueryEngine engine_b(&*reader_b);

  for (const std::string& line : *workload_) {
    EXPECT_EQ(Ask(router, line), engine_a.Answer(line));
  }

  ASSERT_TRUE(PublishSnapshotImage(*image_b_, dir + "/snap-2.bin").ok());
  SnapshotPollResult poll = manager.Poll();
  EXPECT_EQ(poll.swaps, 1);
  EXPECT_EQ(router.generation(), 2u);

  // Every shard must now answer from generation 2 — the workload covers
  // enough distinct keys to land on all four.
  for (const std::string& line : *workload_) {
    EXPECT_EQ(Ask(router, line), engine_b.Answer(line)) << line;
  }
  const std::string stats = Ask(router, "stats");
  EXPECT_NE(stats.find("\tgeneration=2\t"), std::string::npos) << stats;
}

TEST_F(RouterTest, NoGenerationYieldsErr) {
  const std::string dir = ::testing::TempDir() + "/router_empty";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  SnapshotManagerOptions manager_options;
  manager_options.dir = dir;
  manager_options.backoff_base_ms = 0;
  SnapshotManager manager(manager_options);
  RouterOptions options;
  options.num_shards = 2;
  ShardRouter router(&manager, options);
  EXPECT_EQ(Ask(router, "instances-of\tanything"),
            "ERR\tno snapshot generation available");
}

}  // namespace
}  // namespace semdrift
