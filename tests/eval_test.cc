#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "eval/experiment.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"

namespace semdrift {
namespace {

ConceptId C(uint32_t v) { return ConceptId(v); }
InstanceId E(uint32_t v) { return InstanceId(v); }
SentenceId S(uint32_t v) { return SentenceId(v); }

World BuildTruthWorld() {
  World::Builder builder;
  ConceptId animal = builder.AddConcept("animal");
  ConceptId food = builder.AddConcept("food");
  InstanceId dog = builder.AddInstance("dog");
  InstanceId cat = builder.AddInstance("cat");
  InstanceId chicken = builder.AddInstance("chicken");
  InstanceId pork = builder.AddInstance("pork");
  InstanceId beef = builder.AddInstance("beef");
  builder.AddMembership(animal, dog);
  builder.AddMembership(animal, cat);
  builder.AddMembership(animal, chicken);
  builder.AddMembership(food, pork);
  builder.AddMembership(food, beef);
  builder.AddMembership(food, chicken);  // chicken also food.
  return builder.Build();
}

TEST(GroundTruthTest, PairCorrectness) {
  World world = BuildTruthWorld();
  GroundTruth truth(&world);
  EXPECT_TRUE(truth.PairCorrect(IsAPair{world.FindConcept("animal"),
                                        world.FindInstance("dog")}));
  EXPECT_FALSE(truth.PairCorrect(IsAPair{world.FindConcept("animal"),
                                         world.FindInstance("pork")}));
}

TEST(GroundTruthTest, DpLabelsFollowDefinitions) {
  World world = BuildTruthWorld();
  GroundTruth truth(&world);
  ConceptId animal = world.FindConcept("animal");
  InstanceId dog = world.FindInstance("dog");
  InstanceId cat = world.FindInstance("cat");
  InstanceId chicken = world.FindInstance("chicken");
  InstanceId pork = world.FindInstance("pork");

  InstanceId beef = world.FindInstance("beef");

  KnowledgeBase kb;
  uint32_t sid = 0;
  kb.ApplyExtraction(S(sid++), animal, {dog, cat, chicken}, {}, 1);
  // chicken (correct) triggers a drifted record containing pork (wrong):
  // chicken is an Intentional DP (Def. 3).
  kb.ApplyExtraction(S(sid++), animal, {pork, chicken}, {chicken}, 2);
  // pork (wrong) triggers another wrong extraction (beef): Accidental DP
  // (Def. 4).
  kb.ApplyExtraction(S(sid++), animal, {beef, pork}, {pork}, 3);

  EXPECT_EQ(truth.DpLabelOf(kb, IsAPair{animal, chicken}), DpClass::kIntentionalDP);
  EXPECT_EQ(truth.DpLabelOf(kb, IsAPair{animal, pork}), DpClass::kAccidentalDP);
  EXPECT_EQ(truth.DpLabelOf(kb, IsAPair{animal, dog}), DpClass::kNonDP);
  // beef is wrong but triggered nothing: a symptom, not a cause.
  EXPECT_EQ(truth.DpLabelOf(kb, IsAPair{animal, beef}), DpClass::kUnlabeled);
}

TEST(GroundTruthTest, StatsCountCategories) {
  World world = BuildTruthWorld();
  GroundTruth truth(&world);
  ConceptId animal = world.FindConcept("animal");
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), animal,
                     {world.FindInstance("dog"), world.FindInstance("cat")}, {}, 1);
  kb.ApplyExtraction(S(1), animal, {world.FindInstance("pork")},
                     {world.FindInstance("dog")}, 2);
  auto stats = truth.StatsOf(kb, animal);
  EXPECT_EQ(stats.instances, 3u);
  EXPECT_EQ(stats.correct, 2u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.intentional_dps, 1u);  // dog triggered the wrong pork.
  EXPECT_EQ(stats.non_dps, 1u);          // cat.
}

TEST(MetricsTest, PrfFromCounts) {
  Prf prf = Prf::FromCounts(8, 10, 16);
  EXPECT_NEAR(prf.precision, 0.8, 1e-12);
  EXPECT_NEAR(prf.recall, 0.5, 1e-12);
  EXPECT_NEAR(prf.f1, 2 * 0.8 * 0.5 / 1.3, 1e-12);
  Prf zero = Prf::FromCounts(0, 0, 0);
  EXPECT_EQ(zero.precision, 0.0);
  EXPECT_EQ(zero.f1, 0.0);
}

TEST(MetricsTest, EmptyDenominatorsAreDefinedZerosNeverNan) {
  Prf full = Prf::FromCounts(8, 10, 16);
  EXPECT_TRUE(full.precision_defined);
  EXPECT_TRUE(full.recall_defined);

  Prf no_predictions = Prf::FromCounts(0, 0, 16);
  EXPECT_FALSE(no_predictions.precision_defined);
  EXPECT_TRUE(no_predictions.recall_defined);
  EXPECT_FALSE(std::isnan(no_predictions.precision));
  EXPECT_FALSE(std::isnan(no_predictions.f1));

  Prf no_actuals = Prf::FromCounts(0, 10, 0);
  EXPECT_TRUE(no_actuals.precision_defined);
  EXPECT_FALSE(no_actuals.recall_defined);
  EXPECT_FALSE(std::isnan(no_actuals.recall));
}

TEST(MetricsTest, CleaningMetricsFlagEmptyPopulations) {
  World world = BuildTruthWorld();
  GroundTruth truth(&world);
  ConceptId animal = world.FindConcept("animal");
  InstanceId dog = world.FindInstance("dog");

  // Nothing removed: perror undefined; everything else defined.
  std::vector<IsAPair> population{{animal, dog}};
  CleaningMetrics kept = EvaluateCleaning(truth, population, {});
  EXPECT_FALSE(kept.perror_defined);
  EXPECT_FALSE(kept.rerror_defined);  // No errors in population either.
  EXPECT_TRUE(kept.pcorr_defined);
  EXPECT_TRUE(kept.rcorr_defined);
  EXPECT_FALSE(std::isnan(kept.perror));
  EXPECT_FALSE(std::isnan(kept.rerror));

  // Everything removed: pcorr undefined.
  std::unordered_set<IsAPair, IsAPairHash> all{{animal, dog}};
  CleaningMetrics emptied = EvaluateCleaning(truth, population, all);
  EXPECT_FALSE(emptied.pcorr_defined);
  EXPECT_FALSE(std::isnan(emptied.pcorr));

  // Empty population: all four undefined, none NaN.
  CleaningMetrics empty = EvaluateCleaning(truth, {}, {});
  EXPECT_FALSE(empty.perror_defined);
  EXPECT_FALSE(empty.rerror_defined);
  EXPECT_FALSE(empty.pcorr_defined);
  EXPECT_FALSE(empty.rcorr_defined);
}

TEST(MetricsTest, PrecisionSampleTracksDenominator) {
  World world = BuildTruthWorld();
  GroundTruth truth(&world);
  KnowledgeBase kb;
  std::vector<ConceptId> scope{world.FindConcept("animal")};

  PrecisionSample empty = LivePairPrecisionSample(truth, kb, scope);
  EXPECT_FALSE(empty.defined);
  EXPECT_EQ(empty.pairs, 0u);
  EXPECT_EQ(empty.value, 0.0);

  kb.ApplyExtraction(SentenceId(0), world.FindConcept("animal"),
                     {world.FindInstance("dog")}, {}, 1);
  PrecisionSample one = LivePairPrecisionSample(truth, kb, scope);
  EXPECT_TRUE(one.defined);
  EXPECT_EQ(one.pairs, 1u);
  EXPECT_NEAR(one.value, 1.0, 1e-12);
  EXPECT_NEAR(LivePairPrecision(truth, kb, scope), one.value, 1e-12);
}

TEST(MetricsTest, CleaningMetricsMatchHandComputation) {
  World world = BuildTruthWorld();
  GroundTruth truth(&world);
  ConceptId animal = world.FindConcept("animal");
  InstanceId dog = world.FindInstance("dog");
  InstanceId cat = world.FindInstance("cat");
  InstanceId pork = world.FindInstance("pork");
  std::vector<IsAPair> population{{animal, dog}, {animal, cat}, {animal, pork}};
  std::unordered_set<IsAPair, IsAPairHash> removed{{animal, pork}, {animal, cat}};
  CleaningMetrics m = EvaluateCleaning(truth, population, removed);
  // Removed: pork (error) + cat (correct) -> perror 0.5.
  EXPECT_NEAR(m.perror, 0.5, 1e-12);
  // All 1 errors removed -> rerror 1.
  EXPECT_NEAR(m.rerror, 1.0, 1e-12);
  // Remaining: dog (correct) -> pcorr 1.
  EXPECT_NEAR(m.pcorr, 1.0, 1e-12);
  // Correct total 2, remaining correct 1 -> rcorr 0.5.
  EXPECT_NEAR(m.rcorr, 0.5, 1e-12);
}

TEST(MetricsTest, DetectionPrfBinaryOverTypes) {
  using D = DpClass;
  std::vector<DpClass> predicted{D::kIntentionalDP, D::kNonDP, D::kAccidentalDP,
                                 D::kNonDP};
  std::vector<DpClass> actual{D::kAccidentalDP, D::kNonDP, D::kNonDP,
                              D::kIntentionalDP};
  // Binary: predicted DP at 0 (true DP: yes), 2 (no). Actual DPs at 0, 3.
  Prf prf = DetectionPrf(predicted, actual);
  EXPECT_NEAR(prf.precision, 0.5, 1e-12);
  EXPECT_NEAR(prf.recall, 0.5, 1e-12);
}

TEST(MetricsTest, AccuracyCountsExactMatches) {
  using D = DpClass;
  std::vector<DpClass> predicted{D::kNonDP, D::kAccidentalDP, D::kIntentionalDP};
  std::vector<DpClass> actual{D::kNonDP, D::kIntentionalDP, D::kIntentionalDP};
  EXPECT_NEAR(DetectionAccuracy(predicted, actual), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, PrecisionAtK) {
  World world = BuildTruthWorld();
  GroundTruth truth(&world);
  ConceptId animal = world.FindConcept("animal");
  std::vector<InstanceId> ranked{world.FindInstance("dog"),
                                 world.FindInstance("pork"),
                                 world.FindInstance("cat")};
  EXPECT_NEAR(PrecisionAtK(truth, animal, ranked, 1), 1.0, 1e-12);
  EXPECT_NEAR(PrecisionAtK(truth, animal, ranked, 2), 0.5, 1e-12);
  EXPECT_NEAR(PrecisionAtK(truth, animal, ranked, 3), 2.0 / 3.0, 1e-12);
  // k beyond the list clamps.
  EXPECT_NEAR(PrecisionAtK(truth, animal, ranked, 10), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(PrecisionAtK(truth, animal, {}, 5), 0.0);
}

TEST(ExperimentTest, BuildIsDeterministic) {
  ExperimentConfig config = PaperScaleConfig(0.05);
  auto a = Experiment::Build(config);
  auto b = Experiment::Build(config);
  EXPECT_EQ(a->world().num_concepts(), b->world().num_concepts());
  EXPECT_EQ(a->world().num_instances(), b->world().num_instances());
  EXPECT_EQ(a->corpus().sentences.size(), b->corpus().sentences.size());
  KnowledgeBase kb_a = a->Extract();
  KnowledgeBase kb_b = b->Extract();
  EXPECT_EQ(kb_a.num_live_pairs(), kb_b.num_live_pairs());
}

TEST(ExperimentTest, EvalConceptsAreTheNamedOnes) {
  ExperimentConfig config = PaperScaleConfig(0.05);
  auto experiment = Experiment::Build(config);
  auto eval = experiment->EvalConcepts();
  ASSERT_EQ(eval.size(), 20u);
  EXPECT_EQ(experiment->world().ConceptName(eval[0]), "animal");
  EXPECT_EQ(experiment->world().ConceptName(eval[19]), "woman");
}

TEST(ExperimentTest, VerifiedSourceMatchesWorld) {
  ExperimentConfig config = PaperScaleConfig(0.05);
  auto experiment = Experiment::Build(config);
  VerifiedSource source = experiment->MakeVerifiedSource();
  const World& world = experiment->world();
  int checked = 0;
  for (size_t ci = 0; ci < 5; ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    for (InstanceId e : world.Members(c)) {
      EXPECT_EQ(source(IsAPair{c, e}), world.IsVerified(c, e));
      if (++checked > 200) return;
    }
  }
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  ExperimentConfig a = PaperScaleConfig(0.05);
  ExperimentConfig b = a;
  b.seed = a.seed + 1;
  auto ea = Experiment::Build(a);
  auto eb = Experiment::Build(b);
  EXPECT_NE(ea->world().num_instances(), eb->world().num_instances());
}

}  // namespace
}  // namespace semdrift
