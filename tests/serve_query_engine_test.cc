#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "rank/scorers.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/string_util.h"

namespace semdrift {
namespace {

class QueryEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig config = PaperScaleConfig(0.05);
    config.seed = 31;
    experiment_ = Experiment::Build(config).release();
    kb_ = new KnowledgeBase(experiment_->Extract());
    path_ = ::testing::TempDir() + "/serve_query_engine_test.bin";
    Status written =
        WriteSnapshot(*kb_, experiment_->world(), nullptr, SnapshotOptions{}, path_);
    ASSERT_TRUE(written.ok()) << written.ToString();
    auto opened = SnapshotReader::Open(path_);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    snapshot_ = new SnapshotReader(std::move(*opened));
  }
  static void TearDownTestSuite() {
    delete snapshot_;
    delete kb_;
    delete experiment_;
    snapshot_ = nullptr;
    kb_ = nullptr;
    experiment_ = nullptr;
  }

  /// A concept that actually has live instances (query answers are boring
  /// otherwise).
  static ConceptId PopulatedConcept() {
    for (uint32_t c = 0; c < snapshot_->num_concepts(); ++c) {
      if (snapshot_->ConceptEnd(c) - snapshot_->ConceptBegin(c) >= 3) {
        return ConceptId(c);
      }
    }
    ADD_FAILURE() << "no populated concept in the test KB";
    return ConceptId(0);
  }

  static Experiment* experiment_;
  static KnowledgeBase* kb_;
  static SnapshotReader* snapshot_;
  static std::string path_;
};

Experiment* QueryEngineTest::experiment_ = nullptr;
KnowledgeBase* QueryEngineTest::kb_ = nullptr;
SnapshotReader* QueryEngineTest::snapshot_ = nullptr;
std::string QueryEngineTest::path_;

TEST_F(QueryEngineTest, TopKOrderingMatchesDirectKbScores) {
  QueryEngine engine(snapshot_);
  const World& world = experiment_->world();
  for (uint32_t ci = 0; ci < snapshot_->num_concepts(); ++ci) {
    ConceptId c(ci);
    // Direct lookup: live instances ranked by checked walk score, ties by id.
    ConceptScores scored =
        ScoreConceptChecked(*kb_, c, RankModel::kRandomWalk, WalkParams{});
    std::vector<InstanceId> live = kb_->LiveInstancesOf(c);
    live.erase(std::remove_if(live.begin(), live.end(),
                              [&](InstanceId e) {
                                return e.value >= world.num_instances();
                              }),
               live.end());
    auto score_of = [&](InstanceId e) {
      auto it = scored.scores.find(e);
      return it == scored.scores.end() ? 0.0 : it->second;
    };
    std::sort(live.begin(), live.end(), [&](InstanceId a, InstanceId b) {
      if (score_of(a) != score_of(b)) return score_of(a) > score_of(b);
      return a.value < b.value;
    });
    const size_t k = std::min<size_t>(5, live.size());

    std::string response = engine.Answer("instances-of\t" + world.ConceptName(c) +
                                         "\t" + std::to_string(k));
    std::vector<std::string> fields = Split(response, '\t');
    ASSERT_GE(fields.size(), 3u + k) << response;
    EXPECT_EQ(fields[0], "OK");
    EXPECT_EQ(fields[1], "n=" + std::to_string(live.size()));
    EXPECT_EQ(fields[2], "quarantined=0");
    for (size_t i = 0; i < k; ++i) {
      const std::string expected_name = world.InstanceName(live[i]);
      ASSERT_TRUE(StartsWith(fields[3 + i], expected_name + "="))
          << "concept " << world.ConceptName(c) << " rank " << i << ": got "
          << fields[3 + i] << ", want instance " << expected_name;
      char* end = nullptr;
      const double served = std::strtod(fields[3 + i].c_str() +
                                        expected_name.size() + 1, &end);
      EXPECT_EQ(served, score_of(live[i]));  // %.17g round-trips exactly.
    }
  }
}

TEST_F(QueryEngineTest, ConceptsOfMatchesInverseMembership) {
  QueryEngine engine(snapshot_);
  const World& world = experiment_->world();
  ConceptId c = PopulatedConcept();
  const uint32_t e = snapshot_->PairInstance(snapshot_->ConceptBegin(c.value));
  std::string response =
      engine.Answer("concepts-of\t" + world.InstanceName(InstanceId(e)));
  std::vector<std::string> fields = Split(response, '\t');
  ASSERT_GE(fields.size(), 2u) << response;
  EXPECT_EQ(fields[0], "OK");
  const uint64_t expected_n = snapshot_->InstanceEnd(e) - snapshot_->InstanceBegin(e);
  EXPECT_EQ(fields[1], "n=" + std::to_string(expected_n));
  ASSERT_EQ(fields.size(), 2 + expected_n);
  for (uint64_t i = 0; i < expected_n; ++i) {
    const uint32_t concept_id = snapshot_->InvConcept(snapshot_->InstanceBegin(e) + i);
    EXPECT_TRUE(StartsWith(fields[2 + i],
                           world.ConceptName(ConceptId(concept_id)) + "="));
    EXPECT_TRUE(kb_->Contains(IsAPair{ConceptId(concept_id), InstanceId(e)}));
  }
}

TEST_F(QueryEngineTest, IsAAndDriftScoreAgreeWithSnapshot) {
  QueryEngine engine(snapshot_);
  const World& world = experiment_->world();
  ConceptId c = PopulatedConcept();
  const std::string concept_name = world.ConceptName(c);
  const uint64_t pair = snapshot_->ConceptBegin(c.value);
  const std::string member = world.InstanceName(InstanceId(snapshot_->PairInstance(pair)));

  std::string yes = engine.Answer("is-a\t" + member + "\t" + concept_name);
  ASSERT_TRUE(StartsWith(yes, "OK\tyes\tscore=")) << yes;
  std::string drift = engine.Answer("drift-score\t" + member + "\t" + concept_name);
  // The drift-score payload is exactly the is-a score field.
  std::vector<std::string> yes_fields = Split(yes, '\t');
  EXPECT_EQ(drift, "OK\t" + yes_fields[2].substr(std::string("score=").size()));

  // A known instance that is NOT live under this concept: no + score 0,
  // matching ScoreCache::Get's contract for dead/unknown pairs.
  uint32_t outsider = SnapshotReader::kNoId;
  for (uint32_t e = 0; e < snapshot_->num_instances(); ++e) {
    if (snapshot_->FindPair(c.value, e) == SnapshotReader::kNoPair) {
      outsider = e;
      break;
    }
  }
  ASSERT_NE(outsider, SnapshotReader::kNoId);
  const std::string outsider_name = world.InstanceName(InstanceId(outsider));
  EXPECT_EQ(engine.Answer("is-a\t" + outsider_name + "\t" + concept_name), "OK\tno");
  EXPECT_EQ(engine.Answer("drift-score\t" + outsider_name + "\t" + concept_name),
            "OK\t0");

  EXPECT_EQ(engine.Answer("is-a\tnot a real instance\t" + concept_name),
            "NOT_FOUND\tnot a real instance");
}

TEST_F(QueryEngineTest, WhitespaceModeResolvesMultiWordNames) {
  QueryEngine engine(snapshot_);
  const World& world = experiment_->world();
  // Find a multi-word concept with a live instance.
  for (uint32_t ci = 0; ci < snapshot_->num_concepts(); ++ci) {
    const std::string& name = world.ConceptName(ConceptId(ci));
    if (name.find(' ') == std::string::npos) continue;
    if (snapshot_->ConceptEnd(ci) == snapshot_->ConceptBegin(ci)) continue;
    const std::string member =
        world.InstanceName(InstanceId(snapshot_->PairInstance(snapshot_->ConceptBegin(ci))));
    if (member.find(' ') != std::string::npos) continue;
    // Space-separated line, no tabs: the engine must find the split.
    std::string spacey = engine.Answer("is-a " + member + " " + name);
    std::string tabbed = engine.Answer("is-a\t" + member + "\t" + name);
    EXPECT_EQ(spacey, tabbed);
    EXPECT_TRUE(StartsWith(tabbed, "OK\tyes")) << tabbed;
    return;
  }
  GTEST_SKIP() << "no multi-word concept with live instances in this world";
}

TEST_F(QueryEngineTest, CacheHitsAreByteIdenticalAndCounted) {
  QueryEngine engine(snapshot_);
  const World& world = experiment_->world();
  ConceptId c = PopulatedConcept();
  const std::string query = "instances-of\t" + world.ConceptName(c) + "\t3";
  std::string first = engine.Answer(query);
  std::string second = engine.Answer(query);
  EXPECT_EQ(first, second);
  QueryTypeStats stats = engine.stats().Snapshot(QueryType::kInstancesOf);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.total_ns, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST_F(QueryEngineTest, TinyCacheEvictsButStaysCorrect) {
  QueryEngineOptions options;
  options.cache_shards = 1;
  options.cache_capacity = 2;
  QueryEngine engine(snapshot_, options);
  const World& world = experiment_->world();
  std::vector<std::string> queries;
  for (uint32_t ci = 0; ci < std::min<uint32_t>(8, snapshot_->num_concepts()); ++ci) {
    queries.push_back("instances-of\t" + world.ConceptName(ConceptId(ci)) + "\t2");
  }
  std::vector<std::string> first;
  for (const std::string& q : queries) first.push_back(engine.Answer(q));
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(engine.Answer(queries[i]), first[i]);
  }
}

TEST_F(QueryEngineTest, MalformedRequestsAreErrorsNotCrashes) {
  QueryEngine engine(snapshot_);
  EXPECT_TRUE(StartsWith(engine.Answer(""), "ERR\t"));
  EXPECT_TRUE(StartsWith(engine.Answer("frobnicate\tx"), "ERR\t"));
  EXPECT_TRUE(StartsWith(engine.Answer("is-a\tonly-one-arg"), "ERR\t"));
  EXPECT_TRUE(StartsWith(engine.Answer("instances-of"), "ERR\t"));
  EXPECT_TRUE(StartsWith(engine.Answer("mutex\ta"), "ERR\t"));
  QueryTypeStats stats = engine.stats().Snapshot(QueryType::kIsA);
  EXPECT_EQ(stats.errors, 1u);
}

TEST_F(QueryEngineTest, StatsVerbReportsAllTypes) {
  QueryEngine engine(snapshot_);
  std::string response = engine.Answer("stats");
  EXPECT_TRUE(StartsWith(response, "OK\tstats")) << response;
  for (const char* name :
       {"instances-of=", "concepts-of=", "is-a=", "drift-score=", "mutex="}) {
    EXPECT_NE(response.find(name), std::string::npos) << response;
  }
}

TEST_F(QueryEngineTest, MetricsVerbReturnsRegistryJsonUncached) {
  QueryEngine engine(snapshot_);
  std::string response = engine.Answer("metrics");
  ASSERT_TRUE(StartsWith(response, "OK\t{")) << response;
  EXPECT_NE(response.find("\"counters\""), std::string::npos);
  // Never cached: a metrics answer must always reflect current state.
  engine.Answer("metrics");
  QueryTypeStats stats = engine.stats().Snapshot(QueryType::kMetrics);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

// Regression: resizing the response cache used to be impossible without
// rebuilding the engine (discarding ServeStats). ResizeCache must preserve
// every accumulated stat while changing capacity — including down to 0
// (disabled) and back up.
TEST_F(QueryEngineTest, ResizeCachePreservesStats) {
  QueryEngineOptions options;
  options.cache_shards = 1;
  options.cache_capacity = 4;
  QueryEngine engine(snapshot_, options);
  const World& world = experiment_->world();
  ConceptId c = PopulatedConcept();
  const std::string query = "instances-of\t" + world.ConceptName(c) + "\t3";
  const std::string expected = engine.Answer(query);
  engine.Answer(query);  // Cache hit.
  QueryTypeStats before = engine.stats().Snapshot(QueryType::kInstancesOf);
  ASSERT_EQ(before.count, 2u);
  ASSERT_EQ(before.cache_hits, 1u);

  engine.ResizeCache(1);
  QueryTypeStats after = engine.stats().Snapshot(QueryType::kInstancesOf);
  EXPECT_EQ(after.count, before.count);
  EXPECT_EQ(after.cache_hits, before.cache_hits);
  EXPECT_EQ(after.errors, before.errors);
  // The shrunken cache still answers correctly.
  EXPECT_EQ(engine.Answer(query), expected);

  // Capacity 0 disables caching: identical repeat answers, no new hits.
  engine.ResizeCache(0);
  QueryTypeStats at_disable = engine.stats().Snapshot(QueryType::kInstancesOf);
  std::string a = engine.Answer(query);
  std::string b = engine.Answer(query);
  EXPECT_EQ(a, expected);
  EXPECT_EQ(b, expected);
  QueryTypeStats disabled = engine.stats().Snapshot(QueryType::kInstancesOf);
  EXPECT_EQ(disabled.cache_hits, at_disable.cache_hits);
  EXPECT_EQ(disabled.count, at_disable.count + 2);

  // Re-enable: caching resumes, history still intact.
  engine.ResizeCache(8);
  engine.Answer(query);
  engine.Answer(query);
  QueryTypeStats reenabled = engine.stats().Snapshot(QueryType::kInstancesOf);
  EXPECT_EQ(reenabled.cache_hits, disabled.cache_hits + 1);
  EXPECT_EQ(reenabled.count, disabled.count + 2);
}

// An engine built with a disabled cache can be enabled later (shards always
// exist; only the capacity gate changes).
TEST_F(QueryEngineTest, ResizeCacheEnablesAnInitiallyDisabledCache) {
  QueryEngineOptions options;
  options.cache_capacity = 0;
  QueryEngine engine(snapshot_, options);
  const World& world = experiment_->world();
  ConceptId c = PopulatedConcept();
  const std::string query = "instances-of\t" + world.ConceptName(c) + "\t2";
  engine.Answer(query);
  engine.Answer(query);
  QueryTypeStats cold = engine.stats().Snapshot(QueryType::kInstancesOf);
  EXPECT_EQ(cold.cache_hits, 0u);

  engine.ResizeCache(16);
  std::string warm1 = engine.Answer(query);
  std::string warm2 = engine.Answer(query);
  EXPECT_EQ(warm1, warm2);
  QueryTypeStats warm = engine.stats().Snapshot(QueryType::kInstancesOf);
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.count, 4u);
}

}  // namespace
}  // namespace semdrift
