#ifndef SEMDRIFT_NET_LINE_CHANNEL_H_
#define SEMDRIFT_NET_LINE_CHANNEL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace semdrift {

/// Incremental newline-framed decoder for one connection. Bytes arrive in
/// arbitrary fragments (partial reads, verbs split across recv boundaries);
/// Feed() buffers them and Next() yields complete lines in arrival order.
/// A trailing '\r' is stripped so both "\n" and "\r\n" terminators work.
///
/// Lines longer than `max_line_bytes` are not buffered to death: once the
/// cap is crossed the decoder discards bytes until the next terminator and
/// then emits a single kOversized event *in order*, so the server can answer
/// that request slot with an error instead of silently desyncing the
/// request/response stream.
class LineDecoder {
 public:
  explicit LineDecoder(size_t max_line_bytes);

  enum class Event {
    kNone,       // Need more bytes.
    kLine,       // `*line` holds a complete line (terminator stripped).
    kOversized,  // A line exceeded the cap; it was discarded.
  };

  /// Appends a fragment read from the socket.
  void Feed(std::string_view bytes);

  /// Pops the next event. Returns kNone when no full line is buffered.
  Event Next(std::string* line);

  /// EOF handling: moves an unterminated trailing line (if any) into
  /// `*line`. Returns false when there is no residue or the residue was
  /// oversized (already reported via Next()).
  bool TakeResidue(std::string* line);

  size_t buffered_bytes() const { return partial_.size(); }

 private:
  size_t max_line_bytes_;
  /// Bytes of the current (incomplete) line.
  std::string partial_;
  /// True while discarding an oversized line up to its terminator.
  bool discarding_ = false;
  /// Decoded events not yet consumed, in arrival order.
  struct Pending {
    bool oversized;
    std::string line;
  };
  std::deque<Pending> ready_;
};

/// Outbound byte queue for a non-blocking fd. Push() appends a response;
/// Flush() writes as much as the kernel will take, surviving partial writes
/// and EAGAIN, and never raises SIGPIPE.
class WriteQueue {
 public:
  void Push(std::string bytes);

  enum class FlushResult {
    kDrained,  // Queue empty; caller can drop EPOLLOUT interest.
    kBlocked,  // Kernel buffer full; keep EPOLLOUT armed.
    kError,    // Connection is dead (EPIPE/ECONNRESET/...).
  };

  FlushResult Flush(int fd);

  bool empty() const { return chunks_.empty(); }
  size_t pending_bytes() const { return pending_bytes_; }

 private:
  std::deque<std::string> chunks_;
  /// Bytes of chunks_.front() already written.
  size_t front_offset_ = 0;
  size_t pending_bytes_ = 0;
};

/// Parses "tcp:host:port", "unix:/path", or bare "host:port" (tcp implied).
/// Returns false (with a reason in *error) on malformed input.
struct ListenAddress {
  bool is_unix = false;
  std::string host;  // tcp only
  uint16_t port = 0;  // tcp only
  std::string path;  // unix only
};
bool ParseListenAddress(const std::string& spec, ListenAddress* out,
                        std::string* error);

}  // namespace semdrift

#endif  // SEMDRIFT_NET_LINE_CHANNEL_H_
