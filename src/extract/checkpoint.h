#ifndef SEMDRIFT_EXTRACT_CHECKPOINT_H_
#define SEMDRIFT_EXTRACT_CHECKPOINT_H_

#include <functional>
#include <string>
#include <vector>

#include "extract/extractor.h"
#include "kb/knowledge_base.h"
#include "util/status.h"
#include "util/supervisor.h"

namespace semdrift {

/// Checkpoint/resume for the iterative extraction loop (Sec. 3's
/// bootstrapping run). Later iterations depend entirely on earlier state,
/// so a crash mid-run used to waste everything; with checkpointing the run
/// snapshots `(extraction provenance, per-iteration stats, iteration
/// cursor)` after every iteration and can resume from the latest valid
/// snapshot with byte-identical results.
///
/// On-disk format: one framed text file per iteration
/// (`checkpoint-<iter>.ckpt`), versioned header + CRC32 footer (see
/// util/framed_file.h). Records are the KB's full provenance log — counts,
/// liveness and the trigger graph are *derived* state and are rebuilt by
/// replay (KnowledgeBase::FromRecords), which keeps the format small and
/// makes every restore self-verifying: a restored KB must pass
/// KnowledgeBase::Validate() before it is allowed to seed more iterations.
/// Files are written to a temp name and renamed into place, so a torn write
/// leaves at most a `.tmp` carcass plus the intact previous checkpoint; a
/// checkpoint that *is* damaged anyway (checksum/replay/validation failure)
/// is skipped and the previous one is used.

/// Which half of the pipeline a snapshot belongs to. Format v2 snapshots
/// carry the phase (and, for kClean, the completed round plus the run's
/// health report) so a resume lands exactly where the crash happened —
/// including restored quarantine state. v1 files load as kExtract.
enum class CheckpointPhase {
  /// Mid-extraction: `completed_iteration` extraction iterations applied.
  kExtract = 0,
  /// Mid-cleaning: extraction finished, `clean_round` cleaning rounds
  /// applied on top.
  kClean,
};

/// One snapshot: everything needed to continue the run after
/// `completed_iteration` (and, in the kClean phase, `clean_round`).
struct CheckpointState {
  /// The last iteration fully applied to the records.
  int completed_iteration = 0;
  /// Stats of every completed iteration, in order.
  std::vector<IterationStats> stats;
  /// The KB's provenance log (KnowledgeBase::records()).
  std::vector<ExtractionRecord> records;
  CheckpointPhase phase = CheckpointPhase::kExtract;
  /// Cleaning rounds completed (kClean phase only).
  int clean_round = 0;
  /// Supervision outcomes so far — quarantined/degraded concepts survive a
  /// crash and stay excluded/flagged after --resume. Empty when the run is
  /// unsupervised.
  RunHealthReport health;
};

/// The file index a snapshot is stored under: extraction snapshots use their
/// iteration; cleaning snapshots continue the sequence at
/// `completed_iteration + clean_round` (collision-free — extraction stopped
/// before ever producing that index, and newest-valid-wins ordering keeps
/// working across the phase boundary).
int CheckpointFileIndex(const CheckpointState& state);

/// Serializes one snapshot to `path` (not atomic — use WriteCheckpoint for
/// the rename dance). Exposed for tests.
Status SaveCheckpoint(const CheckpointState& state, const std::string& path);

/// Reads one snapshot. Fails with kDataLoss on truncation, checksum
/// mismatch or malformed/out-of-range fields — a checkpoint is
/// machine-written, so *any* deviation means the bytes cannot be trusted
/// and the loader refuses them wholesale (no lenient mode here).
Result<CheckpointState> LoadCheckpoint(const std::string& path);

/// The canonical file path of iteration `iteration` inside `dir`.
std::string CheckpointPath(const std::string& dir, int iteration);

/// Atomically persists a snapshot into `dir` (created if missing): writes
/// `checkpoint-<iter>.ckpt.tmp`, then renames over the final name.
Status WriteCheckpoint(const std::string& dir, const CheckpointState& state);

/// Deletes all but the newest `keep` checkpoints in `dir`.
Status PruneCheckpoints(const std::string& dir, int keep);

/// A checkpoint restored all the way to a live, validated knowledge base.
struct RestoredCheckpoint {
  CheckpointState state;
  KnowledgeBase kb;
};

/// Scans `dir` for checkpoints, newest first, and returns the first one
/// that loads, replays and validates. Torn or corrupt snapshots are skipped
/// (that is the fall-back guarantee: a crash during checkpoint N resumes
/// from N-1). kNotFound when the directory holds no valid checkpoint.
/// `num_concepts` / `num_sentences` bound-check restored ids when nonzero.
Result<RestoredCheckpoint> LoadLatestValidCheckpoint(const std::string& dir,
                                                     size_t num_concepts = 0,
                                                     size_t num_sentences = 0);

/// Checkpointing policy for a run.
struct CheckpointConfig {
  /// Directory holding `checkpoint-*.ckpt`; created on first write.
  std::string dir;
  /// Start from the latest valid checkpoint in `dir` (fresh run when none).
  bool resume = false;
  /// Re-run KnowledgeBase::Validate() after every iteration, not just after
  /// restores — the debug belt-and-braces mode.
  bool validate_each_iteration = false;
  /// Keep only the newest N checkpoints (0 = keep all).
  int keep_last = 0;
  /// Id-space bounds for restore validation (0 = skip the bound check).
  /// ResumeFrom re-checks sentence bounds either way; these make the
  /// validator reject dangling ids with a precise message first.
  size_t num_concepts = 0;
  size_t num_sentences = 0;
};

/// The checkpointed equivalent of IterativeExtractor::Run: restores (when
/// asked), then alternates RunIteration / WriteCheckpoint until fixpoint or
/// the iteration cap. `kb` must be empty unless resuming restored into it.
/// Produces byte-identical extraction state to an uninterrupted Run —
/// that equivalence is what makes mid-run kills recoverable without
/// touching Table 1/2 numbers. A restored kClean-phase snapshot returns its
/// stats immediately (extraction is already complete; the caller resumes
/// cleaning from `state.clean_round`).
Result<std::vector<IterationStats>> RunWithCheckpoints(
    IterativeExtractor* extractor, KnowledgeBase* kb,
    const CheckpointConfig& config,
    const std::function<void(const IterationStats&, const KnowledgeBase&)>&
        on_iteration = nullptr);

}  // namespace semdrift

#endif  // SEMDRIFT_EXTRACT_CHECKPOINT_H_
