#ifndef SEMDRIFT_ML_KPCA_H_
#define SEMDRIFT_ML_KPCA_H_

#include <vector>

#include "ml/kernel.h"
#include "ml/matrix.h"

namespace semdrift {

/// Kernel PCA options (Sec. 3.3.1).
struct KpcaOptions {
  KernelType kernel = KernelType::kRbf;
  /// RBF width; <= 0 selects 1 / (d * variance) automatically (after
  /// standardization that is 1/d).
  double rbf_gamma = -1.0;
  /// Keep at most this many components; 0 keeps every component whose
  /// eigenvalue clears the floor ("full rank kernel PCA").
  int max_components = 0;
  /// Eigenvalues below floor * max_eigenvalue are treated as zero.
  double eigen_floor = 1e-9;
  /// Standardize input dimensions to zero mean / unit variance before the
  /// kernel — prevents one dominant raw feature (the paper's f2 concern,
  /// Sec. 3.2.3) from flattening the kernel geometry.
  bool standardize = true;
};

/// Full-rank kernel PCA with the out-of-sample projection of Sec. 3.3.1:
/// fit on training rows, then Transform() maps arbitrary points x_j into the
/// r-dimensional representation x~_j via x~^p_j = sum_i alpha^p_i k~(x_i, x_j).
class KernelPca {
 public:
  KernelPca() = default;

  /// Fits on the rows of `x` (n samples by d features). Returns false when
  /// the input is degenerate (fewer than 2 rows or no positive eigenvalue).
  bool Fit(const Matrix& x, const KpcaOptions& options);

  /// Projects one d-dimensional point; returns an r-dimensional vector.
  std::vector<double> Transform(const std::vector<double>& x) const;

  /// Projects every row of `x`, producing an (x.rows() by r) matrix.
  Matrix TransformMatrix(const Matrix& x) const;

  size_t num_components() const { return num_components_; }
  bool fitted() const { return num_components_ > 0; }

  /// Eigenvalues retained (descending).
  const std::vector<double>& eigenvalues() const { return eigenvalues_; }

 private:
  /// Applies standardization to a copy of a raw point.
  std::vector<double> Standardize(const std::vector<double>& x) const;

  KpcaOptions options_;
  double gamma_ = 1.0;
  size_t num_components_ = 0;
  Matrix train_;                    // Standardized training rows.
  Matrix alphas_;                   // n x r dual coefficients (scaled 1/sqrt(l)).
  std::vector<double> eigenvalues_; // Retained eigenvalues, descending.
  std::vector<double> k_row_mean_;  // Row means of the training kernel.
  double k_total_mean_ = 0.0;
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_ML_KPCA_H_
