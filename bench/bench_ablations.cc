// Ablation study for the design choices DESIGN.md calls out:
//   (a) evidence policy of the base extractor (support-sum vs distinct);
//   (b) Eq. 21 gating of the Accidental-DP treatment on/off;
//   (c) cascade policy (all-triggers-dead vs any-trigger-dead);
//   (d) detector retraining per cleaning round on/off;
//   (e) score model behind Eq. 21 / f3-f4 (random walk vs frequency).

#include <iostream>
#include <unordered_set>

#include "bench_common.h"
#include "dp/cleaner.h"
#include "eval/metrics.h"
#include "util/table_writer.h"

using namespace semdrift;

namespace {

struct Outcome {
  CleaningMetrics metrics;
  size_t rounds = 0;
};

Outcome RunCleaning(const Experiment& experiment, const CleanerOptions& options) {
  KnowledgeBase kb = experiment.Extract();
  std::vector<ConceptId> scope = experiment.EvalConcepts();
  std::vector<IsAPair> population = LivePairsOf(kb, scope);
  DpCleaner cleaner(&experiment.corpus().sentences, experiment.MakeVerifiedSource(),
                    experiment.world().num_concepts(), options);
  CleaningReport report = cleaner.Clean(&kb, scope);
  std::unordered_set<IsAPair, IsAPairHash> removed;
  for (const IsAPair& pair : population) {
    if (!kb.Contains(pair)) removed.insert(pair);
  }
  Outcome outcome;
  outcome.metrics = EvaluateCleaning(experiment.truth(), population, removed);
  outcome.rounds = static_cast<size_t>(report.rounds);
  return outcome;
}

}  // namespace

int main() {
  auto experiment = bench::BuildBenchExperiment();

  // (a) Extractor evidence policy: how much drift does each policy admit?
  {
    TableWriter table("Ablation (a): extractor evidence policy vs drift");
    table.SetHeader({"policy", "distinct_pairs", "precision_eval"});
    for (EvidencePolicy policy :
         {EvidencePolicy::kSupportSum, EvidencePolicy::kDistinctCount}) {
      ExperimentConfig config = experiment->config();
      config.extractor.evidence = policy;
      auto variant = Experiment::Build(config);
      KnowledgeBase kb = variant->Extract();
      table.AddRow(policy == EvidencePolicy::kSupportSum ? "support-sum"
                                                         : "distinct-count",
                   {static_cast<double>(kb.num_live_pairs()),
                    LivePairPrecision(variant->truth(), kb, variant->EvalConcepts())},
                   4);
    }
    table.Print(std::cout);
  }

  // (b)-(e): cleaning-option ablations on the shared experiment.
  TableWriter table("Ablations (b)-(e): DP-cleaning design choices");
  table.SetHeader({"variant", "perror", "rerror", "pcorr", "rcorr", "rounds"});
  auto add = [&](const std::string& name, const CleanerOptions& options) {
    Outcome outcome = RunCleaning(*experiment, options);
    table.AddRow(name,
                 {outcome.metrics.perror, outcome.metrics.rerror,
                  outcome.metrics.pcorr, outcome.metrics.rcorr,
                  static_cast<double>(outcome.rounds)},
                 3);
  };

  CleanerOptions base;
  add("default (gated, all-triggers-dead, retrain, random-walk)", base);

  CleanerOptions ungated = base;
  ungated.eq21_gate_accidental = false;
  add("(b) ungated accidental treatment (paper's literal Sec. 4.2)", ungated);

  CleanerOptions aggressive = base;
  aggressive.cascade = CascadePolicy::kAnyTriggerDead;
  add("(c) any-trigger-dead cascade", aggressive);

  CleanerOptions no_retrain = base;
  no_retrain.retrain_each_round = false;
  add("(d) detector trained once (no per-round retraining)", no_retrain);

  CleanerOptions frequency = base;
  frequency.score_model = RankModel::kFrequency;
  add("(e) frequency scores behind Eq. 21 and f3/f4", frequency);

  CleanerOptions no_vote_floor = base;
  no_vote_floor.eq21_min_average_vote = 0.0;
  add("(e') pure argmax Eq. 21 (no weak-evidence vote floor)", no_vote_floor);

  table.Print(std::cout);
  (void)table.WriteCsv("bench_ablations.csv");
  return 0;
}
