#include "text/tokenizer.h"

#include <cctype>

namespace semdrift {

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  std::string current;
  auto flush = [&](bool comma) {
    if (!current.empty()) {
      tokens.push_back(Token{current, comma});
      current.clear();
    } else if (comma && !tokens.empty()) {
      tokens.back().followed_by_comma = true;
    }
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c) || raw == '\'' || raw == '-' || raw == '.') {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (raw == ',') {
      flush(/*comma=*/true);
    } else {
      flush(/*comma=*/false);
    }
  }
  flush(/*comma=*/false);
  // Strip trailing periods that came from sentence-final punctuation — but
  // keep them on abbreviations ("u.s.") whose body contains another dot.
  for (auto& token : tokens) {
    while (!token.text.empty() && token.text.back() == '.' &&
           token.text.find('.') == token.text.size() - 1) {
      token.text.pop_back();
    }
  }
  std::vector<Token> out;
  out.reserve(tokens.size());
  for (auto& token : tokens) {
    // Keep only tokens carrying at least one alphanumeric character;
    // punctuation-only tokens ("..", "'") are noise.
    bool has_alnum = false;
    for (char c : token.text) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        has_alnum = true;
        break;
      }
    }
    if (has_alnum) out.push_back(std::move(token));
  }
  return out;
}

std::string Detokenize(const std::vector<Token>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i].text;
    if (tokens[i].followed_by_comma) out += ',';
  }
  return out;
}

}  // namespace semdrift
