file(REMOVE_RECURSE
  "CMakeFiles/semdrift_rank.dir/concept_graph.cc.o"
  "CMakeFiles/semdrift_rank.dir/concept_graph.cc.o.d"
  "CMakeFiles/semdrift_rank.dir/scorers.cc.o"
  "CMakeFiles/semdrift_rank.dir/scorers.cc.o.d"
  "libsemdrift_rank.a"
  "libsemdrift_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
