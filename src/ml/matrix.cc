#include "ml/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace semdrift {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order: streaming access on both inputs.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = Row(i);
    double* out_row = out.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.Row(k);
      for (size_t j = 0; j < other.cols_; ++j) out_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  out.AddInPlace(other);
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  out.AddInPlace(other, -1.0);
  return out;
}

void Matrix::AddInPlace(const Matrix& other, double scale) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Matrix::Scale(double factor) {
  for (double& v : data_) v *= factor;
}

void Matrix::AddDiagonal(double value) {
  assert(rows_ == cols_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

double Matrix::Trace() const {
  assert(rows_ == cols_);
  double t = 0.0;
  for (size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::FrobeniusNormSq() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

namespace {

/// In-place Cholesky factorization: lower triangle of `a` becomes L with
/// A = L L^T. Returns false when not positive definite.
bool CholeskyFactor(Matrix* a) {
  size_t n = a->rows();
  for (size_t j = 0; j < n; ++j) {
    double d = (*a)(j, j);
    for (size_t k = 0; k < j; ++k) d -= (*a)(j, k) * (*a)(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    double ljj = std::sqrt(d);
    (*a)(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = (*a)(i, j);
      for (size_t k = 0; k < j; ++k) s -= (*a)(i, k) * (*a)(j, k);
      (*a)(i, j) = s / ljj;
    }
  }
  return true;
}

/// Solves L L^T x = b given the factor produced by CholeskyFactor.
void CholeskyBackSolve(const Matrix& l, const double* b, double* x) {
  size_t n = l.rows();
  // Forward: L y = b.
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * x[k];
    x[i] = s / l(i, i);
  }
  // Backward: L^T x = y.
  for (size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
}

}  // namespace

bool CholeskySolve(const Matrix& a, const std::vector<double>& b,
                   std::vector<double>* x) {
  assert(a.rows() == a.cols() && a.rows() == b.size());
  Matrix l = a;
  if (!CholeskyFactor(&l)) return false;
  x->assign(b.size(), 0.0);
  CholeskyBackSolve(l, b.data(), x->data());
  return true;
}

bool CholeskySolveMatrix(const Matrix& a, const Matrix& b, Matrix* x) {
  assert(a.rows() == a.cols() && a.rows() == b.rows());
  Matrix l = a;
  if (!CholeskyFactor(&l)) return false;
  size_t n = b.rows();
  size_t m = b.cols();
  *x = Matrix(n, m);
  std::vector<double> column(n), solved(n);
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < n; ++i) column[i] = b(i, j);
    CholeskyBackSolve(l, column.data(), solved.data());
    for (size_t i = 0; i < n; ++i) (*x)(i, j) = solved[i];
  }
  return true;
}

bool LuSolve(const Matrix& a, const std::vector<double>& b, std::vector<double>* x) {
  assert(a.rows() == a.cols() && a.rows() == b.size());
  size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::abs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      std::swap(perm[col], perm[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double f = lu(r, col) / lu(col, col);
      lu(r, col) = f;
      for (size_t c = col + 1; c < n; ++c) lu(r, c) -= f * lu(col, c);
    }
  }
  // Solve with permuted b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) y[i] = b[perm[i]];
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < i; ++k) y[i] -= lu(i, k) * y[k];
  }
  x->assign(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= lu(ii, k) * (*x)[k];
    (*x)[ii] = s / lu(ii, ii);
  }
  return true;
}

namespace {

double Hypot(double a, double b) { return std::hypot(a, b); }

/// Householder reduction of a symmetric matrix to tridiagonal form.
/// On exit: d = diagonal, e = subdiagonal (e[0] unused), z = accumulated
/// orthogonal transform (columns will become eigenvectors after QL).
void Tridiagonalize(Matrix* z, std::vector<double>* d, std::vector<double>* e) {
  size_t n = z->rows();
  d->assign(n, 0.0);
  e->assign(n, 0.0);
  if (n == 0) return;
  for (size_t i = n - 1; i > 0; --i) {
    size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (size_t k = 0; k <= l; ++k) scale += std::abs((*z)(i, k));
      if (scale == 0.0) {
        (*e)[i] = (*z)(i, l);
      } else {
        for (size_t k = 0; k <= l; ++k) {
          (*z)(i, k) /= scale;
          h += (*z)(i, k) * (*z)(i, k);
        }
        double f = (*z)(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        (*e)[i] = scale * g;
        h -= f * g;
        (*z)(i, l) = f - g;
        f = 0.0;
        for (size_t j = 0; j <= l; ++j) {
          (*z)(j, i) = (*z)(i, j) / h;
          g = 0.0;
          for (size_t k = 0; k <= j; ++k) g += (*z)(j, k) * (*z)(i, k);
          for (size_t k = j + 1; k <= l; ++k) g += (*z)(k, j) * (*z)(i, k);
          (*e)[j] = g / h;
          f += (*e)[j] * (*z)(i, j);
        }
        double hh = f / (h + h);
        for (size_t j = 0; j <= l; ++j) {
          f = (*z)(i, j);
          (*e)[j] = g = (*e)[j] - hh * f;
          for (size_t k = 0; k <= j; ++k) {
            (*z)(j, k) -= f * (*e)[k] + g * (*z)(i, k);
          }
        }
      }
    } else {
      (*e)[i] = (*z)(i, l);
    }
    (*d)[i] = h;
  }
  (*d)[0] = 0.0;
  (*e)[0] = 0.0;
  for (size_t i = 0; i < n; ++i) {
    size_t l = i;  // Columns [0, i) already transformed.
    if ((*d)[i] != 0.0) {
      for (size_t j = 0; j < l; ++j) {
        double g = 0.0;
        for (size_t k = 0; k < l; ++k) g += (*z)(i, k) * (*z)(k, j);
        for (size_t k = 0; k < l; ++k) (*z)(k, j) -= g * (*z)(k, i);
      }
    }
    (*d)[i] = (*z)(i, i);
    (*z)(i, i) = 1.0;
    for (size_t j = 0; j < l; ++j) {
      (*z)(j, i) = 0.0;
      (*z)(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL on the tridiagonal (d, e), accumulating rotations
/// into z's columns.
bool TridiagonalQl(std::vector<double>* d, std::vector<double>* e, Matrix* z) {
  size_t n = d->size();
  if (n == 0) return true;
  for (size_t i = 1; i < n; ++i) (*e)[i - 1] = (*e)[i];
  (*e)[n - 1] = 0.0;
  for (size_t l = 0; l < n; ++l) {
    int iterations = 0;
    size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        double dd = std::abs((*d)[m]) + std::abs((*d)[m + 1]);
        if (std::abs((*e)[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (iterations++ == 50) return false;
        double g = ((*d)[l + 1] - (*d)[l]) / (2.0 * (*e)[l]);
        double r = Hypot(g, 1.0);
        double sign_r = g >= 0.0 ? std::abs(r) : -std::abs(r);
        g = (*d)[m] - (*d)[l] + (*e)[l] / (g + sign_r);
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool broke_early = false;
        for (size_t ii = m; ii-- > l;) {
          double f = s * (*e)[ii];
          double b = c * (*e)[ii];
          r = Hypot(f, g);
          (*e)[ii + 1] = r;
          if (r == 0.0) {
            (*d)[ii + 1] -= p;
            (*e)[m] = 0.0;
            broke_early = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = (*d)[ii + 1] - p;
          r = ((*d)[ii] - g) * s + 2.0 * c * b;
          p = s * r;
          (*d)[ii + 1] = g + p;
          g = c * r - b;
          for (size_t k = 0; k < n; ++k) {
            f = (*z)(k, ii + 1);
            (*z)(k, ii + 1) = s * (*z)(k, ii) + c * f;
            (*z)(k, ii) = c * (*z)(k, ii) - s * f;
          }
        }
        if (broke_early) continue;
        (*d)[l] -= p;
        (*e)[l] = g;
        (*e)[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

}  // namespace

EigenResult SymmetricEigen(const Matrix& a) {
  assert(a.rows() == a.cols());
  EigenResult result;
  result.vectors = a;
  std::vector<double> e;
  Tridiagonalize(&result.vectors, &result.values, &e);
  bool ok = TridiagonalQl(&result.values, &e, &result.vectors);
  assert(ok && "QL iteration failed to converge");
  (void)ok;
  // Sort ascending by eigenvalue, permuting eigenvector columns.
  size_t n = result.values.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return result.values[x] < result.values[y];
  });
  std::vector<double> sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (size_t j = 0; j < n; ++j) {
    sorted_values[j] = result.values[order[j]];
    for (size_t i = 0; i < n; ++i) sorted_vectors(i, j) = result.vectors(i, order[j]);
  }
  result.values = std::move(sorted_values);
  result.vectors = std::move(sorted_vectors);
  return result;
}

}  // namespace semdrift
