# Empty compiler generated dependencies file for semdrift_corpus.
# This may be replaced when dependencies are built.
