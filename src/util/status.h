#ifndef SEMDRIFT_UTIL_STATUS_H_
#define SEMDRIFT_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace semdrift {

/// Outcome of a fallible operation. Modeled on the database-engine idiom
/// (rocksdb::Status): cheap to construct/copy in the OK case, carries an
/// error code plus a human-readable message otherwise. Library code never
/// throws across its public boundary; fallible APIs return Status or
/// Result<T> instead.
class Status {
 public:
  /// Error category. Kept deliberately small; the message carries detail.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kFailedPrecondition,
    kInternal,
    kIOError,
    /// Unrecoverable corruption of persisted state: truncated file,
    /// checksum mismatch, torn checkpoint. Distinct from kIOError (the
    /// operating system failed us) — here the bytes arrived but are wrong.
    kDataLoss,
  };

  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory functions, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<category>: <message>" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. The database-engine
/// replacement for exceptions on value-returning fallible APIs.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_t;`.
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: `return Status::NotFound(...)`.
  Result(Status status) : state_(std::move(status)) {  // NOLINT(runtime/explicit)
    // An OK status carries no value; normalize to an internal error so the
    // caller's `ok()` check stays truthful.
    if (std::get<Status>(state_).ok()) {
      state_ = Status::Internal("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Error status; OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  /// Access the held value. Precondition: ok().
  const T& value() const& { return std::get<T>(state_); }
  T& value() & { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_UTIL_STATUS_H_
