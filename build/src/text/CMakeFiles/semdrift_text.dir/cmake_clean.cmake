file(REMOVE_RECURSE
  "CMakeFiles/semdrift_text.dir/morphology.cc.o"
  "CMakeFiles/semdrift_text.dir/morphology.cc.o.d"
  "CMakeFiles/semdrift_text.dir/sentence.cc.o"
  "CMakeFiles/semdrift_text.dir/sentence.cc.o.d"
  "CMakeFiles/semdrift_text.dir/tokenizer.cc.o"
  "CMakeFiles/semdrift_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/semdrift_text.dir/vocab.cc.o"
  "CMakeFiles/semdrift_text.dir/vocab.cc.o.d"
  "libsemdrift_text.a"
  "libsemdrift_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
