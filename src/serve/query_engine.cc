#include "serve/query_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace semdrift {

namespace {

constexpr int kNumTypes = static_cast<int>(QueryType::kNumTypes);

constexpr std::string_view kTypeNames[kNumTypes] = {
    "instances-of", "concepts-of", "is-a", "drift-score", "mutex", "stats",
    "metrics",
};

/// Pre-registered per-verb registry handles ("serve.<verb>.requests",
/// "serve.<verb>.ns"), so each Answer() pays two atomic ops, no lookups.
struct VerbMetrics {
  MetricsRegistry::Counter requests;
  MetricsRegistry::Histogram latency_ns;
};

VerbMetrics& GetVerbMetrics(int type_index) {
  static std::vector<VerbMetrics>* metrics = [] {
    auto* out = new std::vector<VerbMetrics>();
    out->reserve(kNumTypes);
    for (int i = 0; i < kNumTypes; ++i) {
      std::string prefix = "serve." + std::string(kTypeNames[i]);
      out->push_back(VerbMetrics{
          GlobalMetrics().RegisterCounter(prefix + ".requests"),
          GlobalMetrics().RegisterHistogram(prefix + ".ns", LatencyBucketsNs())});
    }
    return out;
  }();
  return (*metrics)[type_index];
}

/// %.17g: shortest text that round-trips an IEEE double exactly, so scripted
/// expected-answer diffs never hit formatting noise.
std::string FormatScore(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::vector<std::string_view> Tokenize(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  std::vector<std::string_view> tokens;
  if (line.find('\t') != std::string_view::npos) {
    size_t start = 0;
    while (start <= line.size()) {
      size_t tab = line.find('\t', start);
      if (tab == std::string_view::npos) tab = line.size();
      tokens.push_back(line.substr(start, tab - start));
      start = tab + 1;
    }
    // A trailing empty field from "verb\t" is noise, interior ones are kept
    // (they will fail name resolution loudly rather than silently shift).
    while (!tokens.empty() && tokens.back().empty()) tokens.pop_back();
    return tokens;
  }
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\f' || line[i] == '\v')) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\f' && line[i] != '\v') {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

std::string JoinRange(const std::vector<std::string_view>& args, size_t begin,
                      size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    if (i > begin) out += ' ';
    out.append(args[i].data(), args[i].size());
  }
  return out;
}

bool ParseCount(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 9) return false;
  uint64_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::string_view QueryTypeName(QueryType type) {
  return kTypeNames[static_cast<int>(type)];
}

uint32_t SectionsForQuery(QueryType type) {
  // Names mask: FindConcept/FindInstance walk NSRT and compare against both
  // name tables; responses print names from either table too.
  constexpr uint32_t kNames =
      kSnapSecConceptNames | kSnapSecInstanceNames | kSnapSecNameSort;
  switch (type) {
    case QueryType::kInstancesOf:
      return kNames | kSnapSecForwardCsr | kSnapSecRank | kSnapSecScores |
             kSnapSecConceptMeta;
    case QueryType::kConceptsOf:
      return kNames | kSnapSecInverseCsr | kSnapSecScores;
    case QueryType::kIsA:
      return kNames | kSnapSecForwardCsr | kSnapSecScores | kSnapSecSupport |
             kSnapSecConceptMeta;
    case QueryType::kDriftScore:
      return kNames | kSnapSecForwardCsr | kSnapSecScores;
    case QueryType::kMutex:
      return kNames | kSnapSecConceptMeta | kSnapSecMutex;
    default:
      return 0;  // stats/metrics read counters, not the snapshot.
  }
}

// -- ServeStats --------------------------------------------------------------

void ServeStats::Record(QueryType type, uint64_t ns, bool cache_hit, bool error) {
  Cell& c = cells_[static_cast<int>(type)];
  c.count.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) c.cache_hits.fetch_add(1, std::memory_order_relaxed);
  if (error) c.errors.fetch_add(1, std::memory_order_relaxed);
  c.total_ns.fetch_add(ns, std::memory_order_relaxed);
  uint64_t seen = c.max_ns.load(std::memory_order_relaxed);
  while (ns > seen &&
         !c.max_ns.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

QueryTypeStats ServeStats::Snapshot(QueryType type) const {
  const Cell& c = cells_[static_cast<int>(type)];
  QueryTypeStats out;
  out.count = c.count.load(std::memory_order_relaxed);
  out.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
  out.errors = c.errors.load(std::memory_order_relaxed);
  out.total_ns = c.total_ns.load(std::memory_order_relaxed);
  out.max_ns = c.max_ns.load(std::memory_order_relaxed);
  return out;
}

void ServeStats::Reset() {
  for (Cell& c : cells_) {
    c.count.store(0, std::memory_order_relaxed);
    c.cache_hits.store(0, std::memory_order_relaxed);
    c.errors.store(0, std::memory_order_relaxed);
    c.total_ns.store(0, std::memory_order_relaxed);
    c.max_ns.store(0, std::memory_order_relaxed);
  }
}

QueryTypeStats MergeTypeStats(const std::vector<const ServeStats*>& stats,
                              QueryType type) {
  QueryTypeStats merged;
  for (const ServeStats* shard : stats) {
    if (shard == nullptr) continue;
    QueryTypeStats s = shard->Snapshot(type);
    merged.count += s.count;
    merged.cache_hits += s.cache_hits;
    merged.errors += s.errors;
    merged.total_ns += s.total_ns;
    merged.max_ns = std::max(merged.max_ns, s.max_ns);
  }
  return merged;
}

std::string FormatStatsResponse(const std::vector<const ServeStats*>& stats,
                                uint64_t generation, int num_shards) {
  std::string out = "OK\tstats";
  for (int i = 0; i < kNumTypes; ++i) {
    if (static_cast<QueryType>(i) == QueryType::kStats ||
        static_cast<QueryType>(i) == QueryType::kMetrics) {
      continue;
    }
    QueryTypeStats s = MergeTypeStats(stats, static_cast<QueryType>(i));
    out += '\t';
    out += kTypeNames[i];
    out += "=count:" + std::to_string(s.count) +
           ",hits:" + std::to_string(s.cache_hits) +
           ",errors:" + std::to_string(s.errors) +
           ",mean_ns:" + std::to_string(static_cast<uint64_t>(s.MeanNs())) +
           ",max_ns:" + std::to_string(s.max_ns);
  }
  // Hot-swap and admission-control counters (all 0 for single-snapshot
  // serving: CounterValue reads 0 for never-registered names). Appended last
  // so older consumers that split on the per-verb fields keep parsing.
  out += "\tgeneration=" + std::to_string(generation) +
         "\tswaps=" + std::to_string(GlobalMetrics().CounterValue("serve.swap.count")) +
         "\tfailed_publishes=" +
         std::to_string(GlobalMetrics().CounterValue("serve.publish.failed")) +
         "\trolled_back=" +
         std::to_string(GlobalMetrics().CounterValue("serve.publish.rolled_back")) +
         "\tshed=" + std::to_string(GlobalMetrics().CounterValue("batch.shed"));
  if (num_shards > 0) out += "\tshards=" + std::to_string(num_shards);
  return out;
}

// -- QueryEngine -------------------------------------------------------------

QueryEngine::QueryEngine(const SnapshotReader* snapshot, QueryEngineOptions options)
    : snapshot_(snapshot), options_(options) {
  if (options_.shared_stats != nullptr) stats_ptr_ = options_.shared_stats;
  if (options_.cache_shards == 0) options_.cache_shards = 1;
  // Shards always exist so ResizeCache can enable a cache that started
  // disabled; per_shard_capacity_ == 0 short-circuits every cache op.
  shards_.reserve(options_.cache_shards);
  for (size_t i = 0; i < options_.cache_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.cache_capacity > 0) {
    per_shard_capacity_.store(
        std::max<size_t>(1, options_.cache_capacity / options_.cache_shards),
        std::memory_order_relaxed);
  }
}

void QueryEngine::ResizeCache(size_t capacity) {
  options_.cache_capacity = capacity;
  size_t per_shard =
      capacity == 0 ? 0 : std::max<size_t>(1, capacity / options_.cache_shards);
  per_shard_capacity_.store(per_shard, std::memory_order_relaxed);
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    while (shard.lru.size() > per_shard) {
      shard.index.erase(std::string_view(shard.lru.back().first));
      shard.lru.pop_back();
    }
  }
}

std::string QueryEngine::Answer(std::string_view line) {
  return Answer(line, /*record_stats=*/true);
}

std::string QueryEngine::Answer(std::string_view line, bool record_stats) {
  const auto started = std::chrono::steady_clock::now();
  std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty()) return "ERR\tempty request";

  int type_index = -1;
  for (int i = 0; i < kNumTypes; ++i) {
    if (tokens[0] == kTypeNames[i]) {
      type_index = i;
      break;
    }
  }
  if (type_index < 0) {
    return "ERR\tunknown verb '" + std::string(tokens[0]) +
           "' (instances-of|concepts-of|is-a|drift-score|mutex|stats|metrics)";
  }
  const QueryType type = static_cast<QueryType>(type_index);
  std::vector<std::string_view> args(tokens.begin() + 1, tokens.end());

  std::string response;
  bool cache_hit = false;
  if (type == QueryType::kStats) {
    response = FormatStats();
  } else if (type == QueryType::kMetrics) {
    // Live process-wide registry dump; caching it would freeze the counters.
    response = "OK\t" + GlobalMetrics().ToJson();
  } else if (Status ready = snapshot_->EnsureSections(SectionsForQuery(type));
             !ready.ok()) {
    // Deferred mmap verification found damage (or the file was resized under
    // the mapping). Never cached: the failure is sticky in the reader, and a
    // cached ERR would outlive a hot swap to a healthy generation.
    response = "ERR\tsnapshot: " + ready.message();
  } else {
    std::string key = std::string(kTypeNames[type_index]);
    for (std::string_view a : args) {
      key += '\t';
      key.append(a.data(), a.size());
    }
    if (CacheGet(key, &response)) {
      cache_hit = true;
    } else {
      response = Execute(type, args);
      CachePut(key, response);
    }
  }
  if (record_stats) {
    const auto ended = std::chrono::steady_clock::now();
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(ended - started)
            .count());
    const bool error = response.compare(0, 2, "OK") != 0;
    stats_ptr_->Record(type, ns, cache_hit, error);
    VerbMetrics& verb = GetVerbMetrics(type_index);
    verb.requests.Add();
    verb.latency_ns.Observe(static_cast<double>(ns));
  }
  return response;
}

std::string QueryEngine::Execute(QueryType type,
                                 const std::vector<std::string_view>& args) {
  switch (type) {
    case QueryType::kInstancesOf:
      return InstancesOf(args);
    case QueryType::kConceptsOf:
      return ConceptsOf(args);
    case QueryType::kIsA:
      return IsA(args);
    case QueryType::kDriftScore:
      return DriftScore(args);
    case QueryType::kMutex:
      return Mutex(args);
    default:
      return "ERR\tinternal: unroutable query type";
  }
}

std::string QueryEngine::InstancesOf(const std::vector<std::string_view>& args) {
  if (args.empty()) return "ERR\tusage: instances-of <concept> [k]";
  size_t name_end = args.size();
  uint64_t k = ~0ull;
  if (args.size() >= 2 && ParseCount(args.back(), &k)) {
    name_end = args.size() - 1;
  } else {
    k = ~0ull;
  }
  std::string name = JoinRange(args, 0, name_end);
  uint32_t c = snapshot_->FindConcept(name);
  if (c == SnapshotReader::kNoId) return "NOT_FOUND\t" + name;

  const uint64_t begin = snapshot_->ConceptBegin(c);
  const uint64_t end = snapshot_->ConceptEnd(c);
  const uint64_t total = end - begin;
  const uint64_t take = std::min<uint64_t>(k, total);
  std::string out = "OK\tn=" + std::to_string(total) +
                    "\tquarantined=" + (snapshot_->ConceptQuarantined(c) ? "1" : "0");
  const uint32_t* rank = snapshot_->RankOrder();
  for (uint64_t i = 0; i < take; ++i) {
    const uint32_t pair = rank[begin + i];
    out += '\t';
    out += snapshot_->InstanceName(snapshot_->PairInstance(pair));
    out += '=';
    out += FormatScore(snapshot_->PairScore(pair));
  }
  return out;
}

std::string QueryEngine::ConceptsOf(const std::vector<std::string_view>& args) {
  if (args.empty()) return "ERR\tusage: concepts-of <instance>";
  std::string name = JoinRange(args, 0, args.size());
  uint32_t e = snapshot_->FindInstance(name);
  if (e == SnapshotReader::kNoId) return "NOT_FOUND\t" + name;

  const uint64_t begin = snapshot_->InstanceBegin(e);
  const uint64_t end = snapshot_->InstanceEnd(e);
  std::string out = "OK\tn=" + std::to_string(end - begin);
  for (uint64_t i = begin; i < end; ++i) {
    out += '\t';
    out += snapshot_->ConceptName(snapshot_->InvConcept(i));
    out += '=';
    out += FormatScore(snapshot_->PairScore(snapshot_->InvPairIndex(i)));
  }
  return out;
}

std::string QueryEngine::IsA(const std::vector<std::string_view>& args) {
  uint32_t e = 0, c = 0;
  std::string miss;
  if (args.size() < 2) return "ERR\tusage: is-a <instance> <concept>";
  if (!SplitTwoNames(args, /*first_is_instance=*/true, /*second_is_instance=*/false,
                     &e, &c, &miss)) {
    return "NOT_FOUND\t" + miss;
  }
  const uint64_t pair = snapshot_->FindPair(c, e);
  if (pair == SnapshotReader::kNoPair) return "OK\tno";
  std::string out = "OK\tyes\tscore=" + FormatScore(snapshot_->PairScore(pair)) +
                    "\tsupport=" + std::to_string(snapshot_->PairSupport(pair)) +
                    "\titer1=" + std::to_string(snapshot_->PairIter1(pair));
  if (snapshot_->ConceptQuarantined(c)) out += "\tquarantined";
  return out;
}

std::string QueryEngine::DriftScore(const std::vector<std::string_view>& args) {
  uint32_t e = 0, c = 0;
  std::string miss;
  if (args.size() < 2) return "ERR\tusage: drift-score <instance> <concept>";
  if (!SplitTwoNames(args, /*first_is_instance=*/true, /*second_is_instance=*/false,
                     &e, &c, &miss)) {
    return "NOT_FOUND\t" + miss;
  }
  // A known pair that is not live scores 0, matching ScoreCache::Get.
  const uint64_t pair = snapshot_->FindPair(c, e);
  const double score = pair == SnapshotReader::kNoPair ? 0.0 : snapshot_->PairScore(pair);
  return "OK\t" + FormatScore(score);
}

std::string QueryEngine::Mutex(const std::vector<std::string_view>& args) {
  uint32_t a = 0, b = 0;
  std::string miss;
  if (args.size() < 2) return "ERR\tusage: mutex <concept> <concept>";
  if (!SplitTwoNames(args, /*first_is_instance=*/false, /*second_is_instance=*/false,
                     &a, &b, &miss)) {
    return "NOT_FOUND\t" + miss;
  }
  if (a == b) return "OK\tno\teffsim=1";
  if (!snapshot_->MutexUsable(a) || !snapshot_->MutexUsable(b)) {
    return "OK\tno\tunusable";
  }
  std::string out = snapshot_->IsMutex(a, b) ? "OK\tyes\teffsim=" : "OK\tno\teffsim=";
  out += FormatScore(snapshot_->EffectiveSim(a, b));
  return out;
}

bool QueryEngine::SplitTwoNames(const std::vector<std::string_view>& args,
                                bool first_is_instance, bool second_is_instance,
                                uint32_t* first_out, uint32_t* second_out,
                                std::string* miss) const {
  auto resolve = [this](const std::string& name, bool is_instance) {
    return is_instance ? snapshot_->FindInstance(name) : snapshot_->FindConcept(name);
  };
  for (size_t i = 1; i < args.size(); ++i) {
    std::string first = JoinRange(args, 0, i);
    std::string second = JoinRange(args, i, args.size());
    uint32_t f = resolve(first, first_is_instance);
    uint32_t s = resolve(second, second_is_instance);
    if (f != SnapshotReader::kNoId && s != SnapshotReader::kNoId) {
      *first_out = f;
      *second_out = s;
      return true;
    }
    if (i == 1) *miss = f == SnapshotReader::kNoId ? first : second;
  }
  return false;
}

bool QueryEngine::CacheGet(const std::string& key, std::string* response) {
  if (per_shard_capacity_.load(std::memory_order_relaxed) == 0) return false;
  Shard& shard =
      *shards_[std::hash<std::string_view>{}(key) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *response = it->second->second;
  return true;
}

void QueryEngine::CachePut(const std::string& key, const std::string& response) {
  const size_t per_shard = per_shard_capacity_.load(std::memory_order_relaxed);
  if (per_shard == 0) return;
  Shard& shard =
      *shards_[std::hash<std::string_view>{}(key) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = response;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, response);
  // The map key views the list node's string, which is address-stable.
  shard.index.emplace(std::string_view(shard.lru.front().first), shard.lru.begin());
  if (shard.lru.size() > per_shard) {
    shard.index.erase(std::string_view(shard.lru.back().first));
    shard.lru.pop_back();
  }
}

std::string QueryEngine::FormatStats() const {
  return FormatStatsResponse({stats_ptr_}, options_.generation);
}

}  // namespace semdrift
