// Timing harness for the parallel per-concept pipeline (BENCH_pipeline.json).
//
// Measures each parallelized stage three ways over one extracted KB:
//
//   baseline — the pre-flattening implementations (unordered_map edge
//              accumulator graph build, edge-copying walk, per-instance
//              core-vector rebuild in F1, SubInstancesOf computed twice per
//              Extract, serial single-stream forest fit, serial mutex
//              build), reimplemented here verbatim so the bench keeps
//              measuring the old cost after the library moved on;
//   serial   — the current implementation at --threads 1;
//   parallel — the current implementation at --threads N (default 4).
//
// Besides wall times it verifies the determinism contract: serial and
// parallel outputs must be bit-identical (exact ==, no tolerance), and the
// flattened implementations must reproduce the baseline's values. The JSON
// report lands in --out (default BENCH_pipeline.json).
//
//   bench_pipeline [--scale 0.3] [--threads 4] [--repeat 3]
//                  [--out BENCH_pipeline.json]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "dp/detector.h"
#include "dp/features.h"
#include "obs/metrics.h"
#include "dp/seed_labeling.h"
#include "eval/experiment.h"
#include "ml/random_forest.h"
#include "mutex/mutex_index.h"
#include "rank/scorers.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace semdrift;

namespace {

// ---------------------------------------------------------------------------
// Baseline (pre-flattening) implementations, kept bit-compatible with the
// originals so their outputs double as a correctness oracle.
// ---------------------------------------------------------------------------

using LegacyEdges = std::vector<std::vector<std::pair<uint32_t, double>>>;

struct LegacyGraph {
  std::vector<InstanceId> nodes;
  std::unordered_map<InstanceId, size_t> index;
  LegacyEdges out_edges;
  std::vector<double> root_weights;
};

/// The old ConceptGraph::Build: accumulate edge weights in an unordered_map
/// keyed by packed (from, to), then scatter into sorted adjacency lists.
LegacyGraph LegacyBuildGraph(const KnowledgeBase& kb, ConceptId c) {
  LegacyGraph graph;
  for (InstanceId e : kb.InstancesEverOf(c)) {
    IsAPair pair{c, e};
    int count = kb.Count(pair);
    if (count <= 0) continue;
    graph.index.emplace(e, graph.nodes.size());
    graph.nodes.push_back(e);
    graph.root_weights.push_back(static_cast<double>(kb.Iter1Count(pair)));
  }
  graph.out_edges.resize(graph.nodes.size());
  std::unordered_map<uint64_t, double> edge_weights;
  kb.ForEachLiveRecordOfConcept(c, [&](const ExtractionRecord& record) {
    for (InstanceId t : record.triggers) {
      auto ti = graph.index.find(t);
      if (ti == graph.index.end()) continue;
      for (InstanceId e : record.instances) {
        if (e == t) continue;
        auto ei = graph.index.find(e);
        if (ei == graph.index.end()) continue;
        uint64_t key = (static_cast<uint64_t>(ti->second) << 32) |
                       static_cast<uint64_t>(ei->second);
        edge_weights[key] += 1.0;
      }
    }
  });
  for (const auto& [key, weight] : edge_weights) {
    uint32_t from = static_cast<uint32_t>(key >> 32);
    uint32_t to = static_cast<uint32_t>(key & 0xffffffffu);
    graph.out_edges[from].emplace_back(to, weight);
  }
  for (auto& edges : graph.out_edges) std::sort(edges.begin(), edges.end());
  return graph;
}

/// The old TeleportingWalk over vector-of-vectors adjacency.
std::vector<double> LegacyWalk(const LegacyEdges& out_edges,
                               const std::vector<double>& restart,
                               const WalkParams& params) {
  size_t n = out_edges.size();
  std::vector<double> out_degree(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (const auto& [to, w] : out_edges[i]) {
      (void)to;
      out_degree[i] += w;
    }
  }
  std::vector<double> p = restart;
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (p[i] == 0.0) continue;
      if (out_degree[i] <= 0.0) {
        dangling += p[i];
        continue;
      }
      double share = p[i] / out_degree[i];
      for (const auto& [to, w] : out_edges[i]) next[to] += share * w;
    }
    double l1 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double value = (1.0 - params.teleport) * (next[i] + dangling * restart[i]) +
                     params.teleport * restart[i];
      l1 += std::abs(value - p[i]);
      next[i] = value;
    }
    p.swap(next);
    if (l1 < params.tolerance) break;
  }
  return p;
}

std::unordered_map<InstanceId, double> LegacyScoreConcept(const KnowledgeBase& kb,
                                                          ConceptId c) {
  WalkParams params;
  LegacyGraph graph = LegacyBuildGraph(kb, c);
  std::vector<double> restart = graph.root_weights;
  double total = std::accumulate(restart.begin(), restart.end(), 0.0);
  if (total <= 0.0) {
    restart.assign(graph.nodes.size(),
                   graph.nodes.empty() ? 0.0 : 1.0 / graph.nodes.size());
  } else {
    for (double& w : restart) w /= total;
  }
  std::vector<double> scores = LegacyWalk(graph.out_edges, restart, params);
  std::unordered_map<InstanceId, double> out;
  out.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) out.emplace(graph.nodes[i], scores[i]);
  return out;
}

using LegacyScoreMap =
    std::unordered_map<uint32_t, std::unordered_map<InstanceId, double>>;

/// The old FeatureExtractor::Extract: rebuilds the concept's core vector
/// inside F1 for every instance and computes SubInstancesOf twice.
FeatureVector LegacyExtract(const KnowledgeBase& kb, const MutexIndex& mutex,
                            const LegacyScoreMap& scores, ConceptId c,
                            InstanceId e) {
  const auto& concept_scores = scores.at(c.value);
  auto score_of = [&](InstanceId x) {
    auto it = concept_scores.find(x);
    return it == concept_scores.end() ? 0.0 : it->second;
  };
  FeatureVector features{};
  {
    std::unordered_map<InstanceId, int> sub = kb.SubInstancesOf(IsAPair{c, e});
    if (!sub.empty()) {
      std::unordered_map<InstanceId, int> core;
      for (const auto& [instance, count] : kb.Iter1InstancesOf(c)) {
        core.emplace(instance, count);
      }
      features[0] = SparseCosine(sub, core);
    }
  }
  features[1] = static_cast<double>(mutex.F2Count(c, e));
  double scale = static_cast<double>(concept_scores.size());
  if (scale <= 0.0) scale = 1.0;
  features[2] = score_of(e) * scale;
  std::unordered_map<InstanceId, int> sub = kb.SubInstancesOf(IsAPair{c, e});
  if (!sub.empty()) {
    double total = 0.0;
    for (const auto& [instance, count] : sub) {
      (void)count;
      total += score_of(instance) * scale;
    }
    features[3] = total / static_cast<double>(sub.size());
  }
  return features;
}

TrainingData LegacyCollect(const KnowledgeBase& kb, const MutexIndex& mutex,
                           const LegacyScoreMap& scores, const SeedLabeler& seeds,
                           const std::vector<ConceptId>& concepts) {
  TrainingData data;
  data.reserve(concepts.size());
  for (ConceptId c : concepts) {
    ConceptTrainingData entry;
    entry.concept_id = c;
    for (InstanceId e : kb.LiveInstancesOf(c)) {
      entry.instances.push_back(e);
      entry.features.push_back(LegacyExtract(kb, mutex, scores, c, e));
      entry.seed_labels.push_back(seeds.Label(c, e));
    }
    if (!entry.instances.empty()) data.push_back(std::move(entry));
  }
  return data;
}

/// The old serial RandomForest::Fit: one RNG stream threaded through every
/// bootstrap and tree in order.
std::vector<DecisionTree> LegacyForestFit(const std::vector<std::vector<double>>& x,
                                          const std::vector<int>& y, int num_classes,
                                          const RandomForestOptions& options) {
  std::vector<DecisionTree> trees(options.num_trees);
  Rng rng(options.seed);
  std::vector<std::vector<size_t>> by_class(num_classes);
  if (options.balance_classes) {
    for (size_t i = 0; i < y.size(); ++i) by_class[y[i]].push_back(i);
  }
  std::vector<size_t> bootstrap(x.size());
  for (auto& tree : trees) {
    if (options.balance_classes) {
      std::vector<int> present;
      for (int k = 0; k < num_classes; ++k) {
        if (!by_class[k].empty()) present.push_back(k);
      }
      for (size_t i = 0; i < x.size(); ++i) {
        const auto& rows = by_class[present[rng.NextBounded(present.size())]];
        bootstrap[i] = rows[rng.NextBounded(rows.size())];
      }
    } else {
      for (size_t i = 0; i < x.size(); ++i) {
        bootstrap[i] = static_cast<size_t>(rng.NextBounded(x.size()));
      }
    }
    tree.Fit(x, y, bootstrap, num_classes, options, &rng);
  }
  return trees;
}

/// The old serial MutexIndex constructor body (inverted index, pairwise
/// dots in one map, live containment scan). Returns the nonzero similarity
/// list for the cross-check.
std::vector<double> LegacyMutexBuild(const KnowledgeBase& kb, size_t num_concepts,
                                     const MutexParams& params) {
  auto pair_key = [](uint32_t a, uint32_t b) {
    uint32_t lo = a < b ? a : b;
    uint32_t hi = a < b ? b : a;
    return (static_cast<uint64_t>(lo) << 32) | hi;
  };
  std::vector<double> core_norms(num_concepts, 0.0);
  struct Posting {
    uint32_t concept_id;
    double weight;
  };
  std::unordered_map<InstanceId, std::vector<Posting>> inverted;
  for (size_t ci = 0; ci < num_concepts; ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    double norm_sq = 0.0;
    int size = 0;
    for (const auto& [e, count] : kb.Iter1InstancesOf(c)) {
      double w = static_cast<double>(count);
      norm_sq += w * w;
      ++size;
      inverted[e].push_back(Posting{c.value, w});
    }
    if (size >= params.min_core_instances) core_norms[ci] = std::sqrt(norm_sq);
  }
  std::unordered_map<uint64_t, double> dots;
  for (const auto& [e, postings] : inverted) {
    (void)e;
    if (postings.size() < 2) continue;
    for (size_t i = 0; i < postings.size(); ++i) {
      for (size_t j = i + 1; j < postings.size(); ++j) {
        dots[pair_key(postings[i].concept_id, postings[j].concept_id)] +=
            postings[i].weight * postings[j].weight;
      }
    }
  }
  std::vector<double> sims;
  for (const auto& [key, dot] : dots) {
    uint32_t a = static_cast<uint32_t>(key >> 32);
    uint32_t b = static_cast<uint32_t>(key & 0xffffffffu);
    if (core_norms[a] <= 0.0 || core_norms[b] <= 0.0) continue;
    sims.push_back(dot / (core_norms[a] * core_norms[b]));
  }
  std::unordered_map<InstanceId, std::vector<ConceptId>> containing;
  for (size_t ci = 0; ci < num_concepts; ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    for (InstanceId e : kb.InstancesEverOf(c)) {
      if (kb.Contains(IsAPair{c, e})) containing[e].push_back(c);
    }
  }
  return sims;
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct StageResult {
  std::string name;
  double baseline_ms = 0.0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool bit_identical = true;  // serial output == parallel output, exactly.
};

/// Best-of-`repeat` wall time of `body` in milliseconds.
template <typename Fn>
double TimeMs(int repeat, Fn&& body) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    Timer timer;
    body();
    double ms = timer.ElapsedMillis();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

bool SameTrainingData(const TrainingData& a, const TrainingData& b) {
  if (a.size() != b.size()) return false;
  for (size_t c = 0; c < a.size(); ++c) {
    if (a[c].concept_id.value != b[c].concept_id.value ||
        a[c].instances != b[c].instances || a[c].features != b[c].features ||
        a[c].seed_labels != b[c].seed_labels) {
      return false;
    }
  }
  return true;
}

void WriteJson(const std::string& path, double scale, int threads, int repeat,
               const std::vector<StageResult>& stages, const StageResult& combined,
               const std::vector<std::pair<int, double>>& forest_thread_sweep,
               const std::vector<std::pair<int, double>>& forest_bin_sweep) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  auto emit_stage = [&](const StageResult& s, const char* indent, bool last) {
    std::fprintf(f,
                 "%s{\"stage\": \"%s\", \"baseline_ms\": %.3f, "
                 "\"serial_ms\": %.3f, \"parallel_ms\": %.3f, "
                 "\"speedup_vs_baseline\": %.3f, \"parallel_speedup\": %.3f, "
                 "\"bit_identical\": %s}%s\n",
                 indent, s.name.c_str(), s.baseline_ms, s.serial_ms, s.parallel_ms,
                 s.parallel_ms > 0.0 ? s.baseline_ms / s.parallel_ms : 0.0,
                 s.parallel_ms > 0.0 ? s.serial_ms / s.parallel_ms : 0.0,
                 s.bit_identical ? "true" : "false", last ? "" : ",");
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"scale\": %g,\n  \"threads\": %d,\n  \"repeat\": %d,\n",
               scale, threads, repeat);
  std::fprintf(f, "  \"stages\": [\n");
  for (size_t i = 0; i < stages.size(); ++i) {
    emit_stage(stages[i], "    ", i + 1 == stages.size());
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"forest_thread_sweep\": [");
  for (size_t i = 0; i < forest_thread_sweep.size(); ++i) {
    std::fprintf(f, "%s{\"threads\": %d, \"ms\": %.3f}", i == 0 ? "" : ", ",
                 forest_thread_sweep[i].first, forest_thread_sweep[i].second);
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"forest_bin_sweep\": [");
  for (size_t i = 0; i < forest_bin_sweep.size(); ++i) {
    std::fprintf(f, "%s{\"max_bins\": %d, \"ms\": %.3f}", i == 0 ? "" : ", ",
                 forest_bin_sweep[i].first, forest_bin_sweep[i].second);
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"detection_pipeline\":\n");
  emit_stage(combined, "    ", false);
  // The run's full metrics registry (pool jobs, warm/collect/train timings),
  // so one file captures both the macro timings and the hot-path telemetry.
  std::fprintf(f, "  \"metrics\": %s\n", semdrift::GlobalMetrics().ToJson().c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.3;
  int threads = 4;
  int repeat = 1;
  std::string out = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      if (!ParseDouble(value(), &scale)) std::exit(2);
    } else if (arg == "--threads") {
      threads = std::atoi(value().c_str());
    } else if (arg == "--repeat") {
      repeat = std::atoi(value().c_str());
    } else if (arg == "--out") {
      out = value();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (repeat < 1) repeat = 1;

  std::printf("bench_pipeline: scale %g, threads %d, repeat %d\n", scale, threads,
              repeat);
  ExperimentConfig config = PaperScaleConfig(scale);
  auto experiment = Experiment::Build(config);
  KnowledgeBase kb = experiment->Extract();
  std::vector<ConceptId> scope;
  for (size_t ci = 0; ci < experiment->world().num_concepts(); ++ci) {
    scope.push_back(ConceptId(static_cast<uint32_t>(ci)));
  }
  std::printf("KB: %zu live pairs over %zu concepts\n", kb.num_live_pairs(),
              scope.size());

  std::vector<StageResult> stages;

  // --- Stage: mutex_build -------------------------------------------------
  StageResult mutex_stage;
  mutex_stage.name = "mutex_build";
  std::vector<double> legacy_sims;
  mutex_stage.baseline_ms = TimeMs(repeat, [&] {
    legacy_sims = LegacyMutexBuild(kb, scope.size(), MutexParams{});
  });
  std::vector<double> serial_sims;
  mutex_stage.serial_ms = TimeMs(repeat, [&] {
    SetGlobalThreadCount(1);
    MutexIndex mutex(kb, scope.size());
    serial_sims = mutex.NonZeroSimilarities();
  });
  std::vector<double> parallel_sims;
  mutex_stage.parallel_ms = TimeMs(repeat, [&] {
    SetGlobalThreadCount(threads);
    MutexIndex mutex(kb, scope.size());
    parallel_sims = mutex.NonZeroSimilarities();
  });
  std::sort(legacy_sims.begin(), legacy_sims.end());
  std::vector<double> sorted_serial = serial_sims;
  std::sort(sorted_serial.begin(), sorted_serial.end());
  mutex_stage.bit_identical =
      serial_sims == parallel_sims && sorted_serial == legacy_sims;
  stages.push_back(mutex_stage);

  // --- Stage: score_warmup ------------------------------------------------
  StageResult warm_stage;
  warm_stage.name = "score_warmup";
  LegacyScoreMap legacy_scores;
  warm_stage.baseline_ms = TimeMs(repeat, [&] {
    legacy_scores.clear();
    for (ConceptId c : scope) legacy_scores.emplace(c.value, LegacyScoreConcept(kb, c));
  });
  SetGlobalThreadCount(1);
  ScoreCache serial_scores(&kb, RankModel::kRandomWalk);
  warm_stage.serial_ms = TimeMs(1, [&] { serial_scores.Warm(scope); });
  SetGlobalThreadCount(threads);
  ScoreCache parallel_scores(&kb, RankModel::kRandomWalk);
  warm_stage.parallel_ms = TimeMs(1, [&] { parallel_scores.Warm(scope); });
  for (ConceptId c : scope) {
    if (serial_scores.Concept(c) != parallel_scores.Concept(c) ||
        serial_scores.Concept(c) != legacy_scores.at(c.value)) {
      warm_stage.bit_identical = false;
      break;
    }
  }
  stages.push_back(warm_stage);

  // --- Stage: collect_training_data ---------------------------------------
  StageResult collect_stage;
  collect_stage.name = "collect_training_data";
  SetGlobalThreadCount(1);
  MutexIndex mutex(kb, scope.size());
  SeedLabeler seeds(&kb, &mutex, [](const IsAPair&) { return false; });
  TrainingData legacy_data;
  collect_stage.baseline_ms = TimeMs(repeat, [&] {
    legacy_data = LegacyCollect(kb, mutex, legacy_scores, seeds, scope);
  });
  TrainingData serial_data;
  collect_stage.serial_ms = TimeMs(repeat, [&] {
    SetGlobalThreadCount(1);
    FeatureExtractor features(&kb, &mutex, &serial_scores);
    serial_data = CollectTrainingData(kb, &features, seeds, scope);
  });
  TrainingData parallel_data;
  collect_stage.parallel_ms = TimeMs(repeat, [&] {
    SetGlobalThreadCount(threads);
    FeatureExtractor features(&kb, &mutex, &parallel_scores);
    parallel_data = CollectTrainingData(kb, &features, seeds, scope);
  });
  collect_stage.bit_identical = SameTrainingData(serial_data, parallel_data) &&
                                SameTrainingData(serial_data, legacy_data);
  stages.push_back(collect_stage);

  // --- Stage: forest_fit ---------------------------------------------------
  StageResult forest_stage;
  forest_stage.name = "forest_fit";
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (const ConceptTrainingData& entry : serial_data) {
    for (const FeatureVector& f : entry.features) {
      x.push_back({f[0], f[1], f[2], f[3]});
      y.push_back(static_cast<int>(x.size()) % 3);
    }
  }
  // Baseline: the pre-histogram trainer — exact splits, one serial RNG
  // stream, re-sorting each feature column at every node. Serial/parallel:
  // the binned trainer at 1/N threads.
  RandomForestOptions forest_options;
  forest_stage.baseline_ms = TimeMs(repeat, [&] {
    LegacyForestFit(x, y, 3, forest_options);
  });
  auto fit_or_die = [&](RandomForest* forest, const RandomForestOptions& options) {
    Status fit = forest->Fit(x, y, 3, options);
    if (!fit.ok()) {
      std::fprintf(stderr, "forest fit failed: %s\n", fit.ToString().c_str());
      std::exit(1);
    }
  };
  RandomForest serial_forest;
  forest_stage.serial_ms = TimeMs(repeat, [&] {
    SetGlobalThreadCount(1);
    fit_or_die(&serial_forest, forest_options);
  });
  RandomForest parallel_forest;
  forest_stage.parallel_ms = TimeMs(repeat, [&] {
    SetGlobalThreadCount(threads);
    fit_or_die(&parallel_forest, forest_options);
  });
  for (size_t i = 0; i < x.size() && i < 200; ++i) {
    if (serial_forest.PredictProba(x[i]) != parallel_forest.PredictProba(x[i])) {
      forest_stage.bit_identical = false;
      break;
    }
  }
  stages.push_back(forest_stage);

  // --- Forest sweeps: thread scaling and bin-count sensitivity -------------
  std::vector<std::pair<int, double>> forest_thread_sweep;
  for (int t : {1, 2, 4, 8}) {
    double ms = TimeMs(repeat, [&] {
      SetGlobalThreadCount(t);
      RandomForest forest;
      fit_or_die(&forest, forest_options);
    });
    forest_thread_sweep.emplace_back(t, ms);
    std::printf("forest_fit @ %d thread%s  %8.1f ms\n", t, t == 1 ? " " : "s",
                ms);
  }
  std::vector<std::pair<int, double>> forest_bin_sweep;
  for (int bins : {64, 128, 256}) {
    RandomForestOptions options = forest_options;
    options.max_bins = bins;
    double ms = TimeMs(repeat, [&] {
      SetGlobalThreadCount(threads);
      RandomForest forest;
      fit_or_die(&forest, options);
    });
    forest_bin_sweep.emplace_back(bins, ms);
    std::printf("forest_fit @ %3d bins    %8.1f ms\n", bins, ms);
  }

  // --- Combined detection pipeline (the ISSUE's acceptance metric) --------
  StageResult combined;
  combined.name = "detection_pipeline";
  combined.baseline_ms = warm_stage.baseline_ms + collect_stage.baseline_ms;
  combined.serial_ms = warm_stage.serial_ms + collect_stage.serial_ms;
  combined.parallel_ms = warm_stage.parallel_ms + collect_stage.parallel_ms;
  combined.bit_identical = warm_stage.bit_identical && collect_stage.bit_identical;

  for (const StageResult& s : stages) {
    std::printf("%-22s baseline %8.1f ms  serial %8.1f ms  parallel %8.1f ms  "
                "speedup %5.2fx  %s\n",
                s.name.c_str(), s.baseline_ms, s.serial_ms, s.parallel_ms,
                s.parallel_ms > 0.0 ? s.baseline_ms / s.parallel_ms : 0.0,
                s.bit_identical ? "bit-identical" : "MISMATCH");
  }
  std::printf("%-22s baseline %8.1f ms  serial %8.1f ms  parallel %8.1f ms  "
              "speedup %5.2fx  %s\n",
              combined.name.c_str(), combined.baseline_ms, combined.serial_ms,
              combined.parallel_ms,
              combined.parallel_ms > 0.0 ? combined.baseline_ms / combined.parallel_ms
                                         : 0.0,
              combined.bit_identical ? "bit-identical" : "MISMATCH");

  WriteJson(out, scale, threads, repeat, stages, combined, forest_thread_sweep,
            forest_bin_sweep);
  std::printf("-> %s\n", out.c_str());

  bool ok = combined.bit_identical;
  for (const StageResult& s : stages) ok = ok && s.bit_identical;
  if (!ok) {
    std::fprintf(stderr, "FAIL: parallel output is not bit-identical to serial\n");
    return 1;
  }
  return 0;
}
