#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "corpus/generator.h"
#include "corpus/renderer.h"
#include "corpus/world.h"

namespace semdrift {
namespace {

World BuildToyWorld() {
  World::Builder builder;
  ConceptId animal = builder.AddConcept("animal");
  ConceptId food = builder.AddConcept("food");
  InstanceId dog = builder.AddInstance("dog");
  InstanceId cat = builder.AddInstance("cat");
  InstanceId chicken = builder.AddInstance("chicken");
  InstanceId pork = builder.AddInstance("pork");
  builder.AddMembership(animal, dog, 1.0);
  builder.AddMembership(animal, cat, 0.5);
  builder.AddMembership(animal, chicken, 0.8);
  builder.AddMembership(food, pork, 1.0);
  builder.AddMembership(food, chicken, 0.05);
  builder.AddPolyseme(chicken, animal, food);
  builder.AddConfusable(animal, food);
  builder.AddConfusable(food, animal);
  builder.MarkVerified(animal, dog);
  return builder.Build();
}

TEST(WorldBuilderTest, MembershipAndNames) {
  World world = BuildToyWorld();
  EXPECT_EQ(world.num_concepts(), 2u);
  EXPECT_EQ(world.num_instances(), 4u);
  ConceptId animal = world.FindConcept("animal");
  InstanceId dog = world.FindInstance("dog");
  ASSERT_TRUE(animal.valid());
  ASSERT_TRUE(dog.valid());
  EXPECT_TRUE(world.IsTrueMember(animal, dog));
  EXPECT_FALSE(world.IsTrueMember(world.FindConcept("food"), dog));
  EXPECT_EQ(world.ConceptName(animal), "animal");
  EXPECT_EQ(world.InstanceName(dog), "dog");
}

TEST(WorldBuilderTest, LookupMissReturnsInvalid) {
  World world = BuildToyWorld();
  EXPECT_FALSE(world.FindConcept("galaxy").valid());
  EXPECT_FALSE(world.FindInstance("unicorn").valid());
}

TEST(WorldBuilderTest, DuplicateMembershipIgnored) {
  World::Builder builder;
  ConceptId c = builder.AddConcept("c");
  InstanceId e = builder.AddInstance("e");
  builder.AddMembership(c, e, 1.0);
  builder.AddMembership(c, e, 9.0);
  World world = builder.Build();
  EXPECT_EQ(world.Members(c).size(), 1u);
  EXPECT_EQ(world.MemberWeights(c)[0], 1.0);
}

TEST(WorldBuilderTest, PolysemyTracked) {
  World world = BuildToyWorld();
  InstanceId chicken = world.FindInstance("chicken");
  EXPECT_EQ(world.ConceptsOf(chicken).size(), 2u);
  ConceptId food = world.FindConcept("food");
  const auto& into_food = world.PolysemesIntoGuest(food);
  ASSERT_EQ(into_food.size(), 1u);
  EXPECT_EQ(into_food[0].instance, chicken);
  EXPECT_EQ(into_food[0].home, world.FindConcept("animal"));
}

TEST(WorldBuilderTest, VerifiedSubset) {
  World world = BuildToyWorld();
  EXPECT_TRUE(world.IsVerified(world.FindConcept("animal"), world.FindInstance("dog")));
  EXPECT_FALSE(world.IsVerified(world.FindConcept("animal"), world.FindInstance("cat")));
}

TEST(WorldBuilderTest, TrulyMutexDetectsSharedMembers) {
  World world = BuildToyWorld();
  // animal and food share chicken, so they are not truly mutex.
  EXPECT_FALSE(world.TrulyMutex(world.FindConcept("animal"), world.FindConcept("food")));
  EXPECT_FALSE(world.TrulyMutex(world.FindConcept("animal"), world.FindConcept("animal")));
}

TEST(WorldBuilderTest, TwinsAreNotMutex) {
  World::Builder builder;
  ConceptId a = builder.AddConcept("nation");
  ConceptId b = builder.AddConcept("country");
  builder.SetSimilarTwins(a, b);
  World world = builder.Build();
  EXPECT_EQ(world.SimilarTwin(a), b);
  EXPECT_EQ(world.SimilarTwin(b), a);
  EXPECT_FALSE(world.TrulyMutex(a, b));
}

TEST(GenerateWorldTest, RespectsSpecCounts) {
  WorldSpec spec;
  spec.num_concepts = 30;
  spec.named_concepts = {"animal", "food"};
  Rng rng(5);
  World world = GenerateWorld(spec, &rng);
  EXPECT_GE(world.num_concepts(), 30u);  // Twins may add a few.
  EXPECT_EQ(world.ConceptName(ConceptId(0)), "animal");
  EXPECT_EQ(world.ConceptName(ConceptId(1)), "food");
  for (size_t ci = 0; ci < 30; ++ci) {
    EXPECT_GE(world.Members(ConceptId(static_cast<uint32_t>(ci))).size(),
              static_cast<size_t>(spec.min_instances));
  }
}

TEST(GenerateWorldTest, DeterministicInSeed) {
  WorldSpec spec;
  spec.num_concepts = 20;
  Rng rng1(77);
  Rng rng2(77);
  World a = GenerateWorld(spec, &rng1);
  World b = GenerateWorld(spec, &rng2);
  ASSERT_EQ(a.num_concepts(), b.num_concepts());
  ASSERT_EQ(a.num_instances(), b.num_instances());
  for (size_t ci = 0; ci < a.num_concepts(); ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    EXPECT_EQ(a.ConceptName(c), b.ConceptName(c));
    EXPECT_EQ(a.Members(c), b.Members(c));
  }
}

TEST(GenerateWorldTest, WeightsDecreaseWithRankForBaseMembers) {
  WorldSpec spec;
  spec.num_concepts = 10;
  spec.polysemy_rate = 0.0;  // Keep weights purely Zipf.
  spec.similar_twin_rate = 0.0;
  Rng rng(9);
  World world = GenerateWorld(spec, &rng);
  for (size_t ci = 0; ci < world.num_concepts(); ++ci) {
    const auto& weights = world.MemberWeights(ConceptId(static_cast<uint32_t>(ci)));
    for (size_t i = 1; i < weights.size(); ++i) {
      EXPECT_LE(weights[i], weights[i - 1]);
    }
  }
}

TEST(GenerateWorldTest, PolysemesAreDualMembers) {
  WorldSpec spec;
  spec.num_concepts = 40;
  spec.polysemy_rate = 0.3;
  Rng rng(11);
  World world = GenerateWorld(spec, &rng);
  ASSERT_FALSE(world.polysemes().empty());
  for (const auto& polyseme : world.polysemes()) {
    EXPECT_TRUE(world.IsTrueMember(polyseme.home, polyseme.instance));
    EXPECT_TRUE(world.IsTrueMember(polyseme.guest, polyseme.instance));
    EXPECT_NE(polyseme.home, polyseme.guest);
  }
}

TEST(GenerateWorldTest, ConfusablesAreSymmetricNonSelf) {
  WorldSpec spec;
  spec.num_concepts = 25;
  Rng rng(13);
  World world = GenerateWorld(spec, &rng);
  for (size_t ci = 0; ci < world.num_concepts(); ++ci) {
    ConceptId c(static_cast<uint32_t>(ci));
    for (ConceptId other : world.Confusables(c)) {
      EXPECT_NE(other, c);
      const auto& back = world.Confusables(other);
      EXPECT_NE(std::find(back.begin(), back.end(), c), back.end());
    }
  }
}

class RendererTest : public ::testing::Test {
 protected:
  RendererTest() : world_(BuildToyWorld()), renderer_(&world_) {}
  World world_;
  SentenceRenderer renderer_;
  Rng rng_{99};
};

TEST_F(RendererTest, UnambiguousMentionsPluralAndInstances) {
  ConceptId animal = world_.FindConcept("animal");
  std::vector<InstanceId> list{world_.FindInstance("dog"), world_.FindInstance("cat")};
  std::string text = renderer_.RenderUnambiguous(animal, list, &rng_);
  EXPECT_NE(text.find("animals"), std::string::npos);
  EXPECT_NE(text.find("such as"), std::string::npos);
  EXPECT_NE(text.find("dog"), std::string::npos);
  EXPECT_NE(text.find("cat"), std::string::npos);
}

TEST_F(RendererTest, AmbiguousMentionsBothConcepts) {
  ConceptId animal = world_.FindConcept("animal");
  ConceptId food = world_.FindConcept("food");
  std::vector<InstanceId> list{world_.FindInstance("pork")};
  std::string text = renderer_.RenderAmbiguous(food, animal, list, &rng_);
  EXPECT_NE(text.find("foods"), std::string::npos);
  EXPECT_NE(text.find("animals"), std::string::npos);
  EXPECT_LT(text.find("foods"), text.find("animals"));  // Head first.
}

TEST_F(RendererTest, OtherThanShape) {
  ConceptId animal = world_.FindConcept("animal");
  ConceptId food = world_.FindConcept("food");
  std::vector<InstanceId> list{world_.FindInstance("cat")};
  std::string text = renderer_.RenderOtherThan(animal, food, list, &rng_);
  EXPECT_NE(text.find("other than"), std::string::npos);
}

class GeneratorTest : public ::testing::Test {
 protected:
  World world_{[] {
    WorldSpec spec;
    spec.num_concepts = 40;
    Rng rng(21);
    return GenerateWorld(spec, &rng);
  }()};
};

TEST_F(GeneratorTest, ProducesRequestedKinds) {
  CorpusSpec spec;
  spec.num_sentences = 4000;
  Rng rng(31);
  Corpus corpus = GenerateCorpus(world_, spec, &rng);
  ASSERT_GT(corpus.sentences.size(), 3000u);
  ASSERT_EQ(corpus.sentences.size(), corpus.truths.size());
  size_t counts[4] = {0, 0, 0, 0};
  for (const auto& truth : corpus.truths) ++counts[static_cast<int>(truth.kind)];
  EXPECT_GT(counts[0], 0u);  // Unambiguous.
  EXPECT_GT(counts[1], 0u);  // Ambiguous.
  EXPECT_GT(counts[2], 0u);  // Misparse.
  EXPECT_GT(counts[3], 0u);  // Wrong fact.
  // Ambiguity fraction near spec.
  double amb = static_cast<double>(counts[1]) / corpus.sentences.size();
  EXPECT_NEAR(amb, spec.frac_ambiguous, 0.05);
}

TEST_F(GeneratorTest, UnambiguousSentencesStateTrueFacts) {
  CorpusSpec spec;
  spec.num_sentences = 2000;
  spec.wrongfact_rate = 0.0;
  spec.misparse_rate = 0.0;
  Rng rng(33);
  Corpus corpus = GenerateCorpus(world_, spec, &rng);
  for (const auto& sentence : corpus.sentences.sentences()) {
    const auto& truth = corpus.TruthOf(sentence.id);
    if (truth.kind != SentenceKind::kUnambiguous) continue;
    ASSERT_EQ(sentence.candidate_concepts.size(), 1u);
    for (InstanceId e : sentence.candidate_instances) {
      EXPECT_TRUE(world_.IsTrueMember(sentence.candidate_concepts[0], e));
    }
  }
}

TEST_F(GeneratorTest, AmbiguousHeadIsTrueConceptAndListIsTrue) {
  CorpusSpec spec;
  spec.num_sentences = 2000;
  Rng rng(35);
  Corpus corpus = GenerateCorpus(world_, spec, &rng);
  for (const auto& sentence : corpus.sentences.sentences()) {
    const auto& truth = corpus.TruthOf(sentence.id);
    if (truth.kind != SentenceKind::kAmbiguous) continue;
    ASSERT_EQ(sentence.candidate_concepts.size(), 2u);
    EXPECT_EQ(sentence.candidate_concepts[0], truth.true_concept);
    for (InstanceId e : sentence.candidate_instances) {
      EXPECT_TRUE(world_.IsTrueMember(truth.true_concept, e));
    }
  }
}

TEST_F(GeneratorTest, MisparseCandidatesAreWrongConcept) {
  CorpusSpec spec;
  spec.num_sentences = 5000;
  spec.misparse_rate = 0.05;
  Rng rng(37);
  Corpus corpus = GenerateCorpus(world_, spec, &rng);
  size_t misparses = 0;
  for (const auto& sentence : corpus.sentences.sentences()) {
    const auto& truth = corpus.TruthOf(sentence.id);
    if (truth.kind != SentenceKind::kMisparse) continue;
    ++misparses;
    ASSERT_EQ(sentence.candidate_concepts.size(), 1u);
    EXPECT_NE(sentence.candidate_concepts[0], truth.true_concept);
  }
  EXPECT_GT(misparses, 50u);
}

TEST_F(GeneratorTest, WrongFactSentencesContainExactlyOneFalseInstance) {
  CorpusSpec spec;
  spec.num_sentences = 5000;
  spec.wrongfact_rate = 0.05;
  Rng rng(39);
  Corpus corpus = GenerateCorpus(world_, spec, &rng);
  size_t wrongfacts = 0;
  for (const auto& sentence : corpus.sentences.sentences()) {
    const auto& truth = corpus.TruthOf(sentence.id);
    if (truth.kind != SentenceKind::kWrongFact) continue;
    ++wrongfacts;
    int wrong = 0;
    for (InstanceId e : sentence.candidate_instances) {
      if (!world_.IsTrueMember(sentence.candidate_concepts[0], e)) ++wrong;
    }
    EXPECT_EQ(wrong, 1);
  }
  EXPECT_GT(wrongfacts, 50u);
}

TEST_F(GeneratorTest, PolysemeLinkedSentencesIncludeThePolyseme) {
  CorpusSpec spec;
  spec.num_sentences = 3000;
  Rng rng(41);
  Corpus corpus = GenerateCorpus(world_, spec, &rng);
  size_t linked = 0;
  for (const auto& sentence : corpus.sentences.sentences()) {
    const auto& truth = corpus.TruthOf(sentence.id);
    if (truth.kind != SentenceKind::kAmbiguous || !truth.polyseme.valid()) continue;
    ++linked;
    EXPECT_NE(std::find(sentence.candidate_instances.begin(),
                        sentence.candidate_instances.end(), truth.polyseme),
              sentence.candidate_instances.end());
    // The adjacent concept is the polyseme's home.
    EXPECT_TRUE(world_.IsTrueMember(sentence.candidate_concepts[1], truth.polyseme));
  }
  EXPECT_GT(linked, 100u);
}

TEST_F(GeneratorTest, ListsContainNoDuplicates) {
  CorpusSpec spec;
  spec.num_sentences = 1500;
  Rng rng(43);
  Corpus corpus = GenerateCorpus(world_, spec, &rng);
  for (const auto& sentence : corpus.sentences.sentences()) {
    std::unordered_set<uint32_t> seen;
    for (InstanceId e : sentence.candidate_instances) {
      EXPECT_TRUE(seen.insert(e.value).second);
    }
  }
}

TEST_F(GeneratorTest, RenderTextToggle) {
  CorpusSpec spec;
  spec.num_sentences = 200;
  spec.render_text = false;
  Rng rng(45);
  Corpus corpus = GenerateCorpus(world_, spec, &rng);
  for (const auto& sentence : corpus.sentences.sentences()) {
    EXPECT_TRUE(sentence.text.empty());
  }
}

TEST(WorldSpecValidationTest, RejectsDegenerateSpecs) {
  WorldSpec ok;
  EXPECT_TRUE(ValidateWorldSpec(ok).ok());

  WorldSpec spec;
  spec.num_concepts = 0;
  EXPECT_FALSE(ValidateWorldSpec(spec).ok());

  spec = WorldSpec();
  spec.min_instances = 5;
  spec.max_instances = 4;
  EXPECT_FALSE(ValidateWorldSpec(spec).ok());

  spec = WorldSpec();
  spec.polysemy_rate = -0.1;
  EXPECT_FALSE(ValidateWorldSpec(spec).ok());

  spec = WorldSpec();
  spec.polysemy_rate = std::nan("");
  EXPECT_FALSE(ValidateWorldSpec(spec).ok());

  spec = WorldSpec();
  spec.morph_variant_rate = 1.5;
  EXPECT_FALSE(ValidateWorldSpec(spec).ok());

  spec = WorldSpec();
  spec.max_confusables = spec.min_confusables - 1;
  EXPECT_FALSE(ValidateWorldSpec(spec).ok());
}

TEST(WorldSpecValidationTest, CheckedGeneratorReturnsStatusNotAssert) {
  WorldSpec spec;
  spec.num_concepts = 0;
  Rng rng(1);
  auto world = GenerateWorldChecked(spec, &rng);
  EXPECT_FALSE(world.ok());

  spec = WorldSpec();
  auto good = GenerateWorldChecked(spec, &rng);
  ASSERT_TRUE(good.ok());
  EXPECT_GT(good->num_concepts(), 0u);
}

TEST(WorldSpecValidationTest, MorphVariantRateZeroPreservesLegacyStream) {
  // The morphology branch must consume no rng draws at rate 0, so legacy
  // seeds keep producing byte-identical worlds.
  WorldSpec spec;
  spec.num_concepts = 20;
  Rng rng_a(77);
  World a = GenerateWorld(spec, &rng_a);
  spec.morph_variant_rate = 0.0;
  Rng rng_b(77);
  World b = GenerateWorld(spec, &rng_b);
  ASSERT_EQ(a.num_instances(), b.num_instances());
  for (uint32_t i = 0; i < a.num_instances(); ++i) {
    EXPECT_EQ(a.InstanceName(InstanceId(i)), b.InstanceName(InstanceId(i)));
  }
}

TEST(WorldSpecValidationTest, MorphVariantsProducePluralSurfaces) {
  WorldSpec spec;
  spec.num_concepts = 20;
  spec.morph_variant_rate = 0.6;
  Rng rng(77);
  World world = GenerateWorld(spec, &rng);
  size_t plural_pairs = 0;
  std::unordered_set<std::string> names;
  for (uint32_t i = 0; i < world.num_instances(); ++i) {
    names.insert(world.InstanceName(InstanceId(i)));
  }
  for (const std::string& name : names) {
    if (name.size() > 1 && names.count(name + "s") > 0) ++plural_pairs;
  }
  EXPECT_GT(plural_pairs, 0u);
}

TEST(CorpusSpecValidationTest, RejectsDegenerateSpecs) {
  CorpusSpec ok;
  EXPECT_TRUE(ValidateCorpusSpec(ok).ok());

  CorpusSpec spec;
  spec.num_sentences = -1;
  EXPECT_FALSE(ValidateCorpusSpec(spec).ok());

  spec = CorpusSpec();
  spec.misparse_rate = 2.0;
  EXPECT_FALSE(ValidateCorpusSpec(spec).ok());

  spec = CorpusSpec();
  spec.misparse_late_frac = -0.5;
  EXPECT_FALSE(ValidateCorpusSpec(spec).ok());

  spec = CorpusSpec();
  spec.min_list = 3;
  spec.max_list = 2;
  EXPECT_FALSE(ValidateCorpusSpec(spec).ok());
}

TEST_F(GeneratorTest, CheckedGeneratorMatchesUnchecked) {
  CorpusSpec spec;
  spec.num_sentences = 300;
  Rng rng_a(99);
  Corpus plain = GenerateCorpus(world_, spec, &rng_a);
  Rng rng_b(99);
  auto checked = GenerateCorpusChecked(world_, spec, &rng_b);
  ASSERT_TRUE(checked.ok());
  ASSERT_EQ(plain.sentences.size(), checked->sentences.size());

  spec.num_sentences = -5;
  Rng rng_c(99);
  EXPECT_FALSE(GenerateCorpusChecked(world_, spec, &rng_c).ok());
}

TEST_F(GeneratorTest, MisparseLateFracConcentratesFalsePairsLate) {
  CorpusSpec spec;
  spec.num_sentences = 4000;
  spec.misparse_rate = 0.2;
  spec.misparse_late_frac = 1.0;
  Rng rng(52);
  Corpus corpus = GenerateCorpus(world_, spec, &rng);
  // With late_frac 1.0 every misparsed sentence carries two wrong
  // candidates instead of one.
  size_t double_wrong = 0, single_wrong = 0;
  for (size_t i = 0; i < corpus.sentences.size(); ++i) {
    const auto& truth = corpus.truths[i];
    if (truth.kind != SentenceKind::kMisparse) continue;
    const auto& sentence = corpus.sentences.sentences()[i];
    if (sentence.candidate_concepts.size() >= 2) {
      ++double_wrong;
    } else {
      ++single_wrong;
    }
  }
  EXPECT_GT(double_wrong, 0u);
  EXPECT_EQ(single_wrong, 0u);

  // And at 0.0 the legacy single-wrong shape is preserved.
  spec.misparse_late_frac = 0.0;
  Rng rng2(52);
  Corpus legacy = GenerateCorpus(world_, spec, &rng2);
  for (size_t i = 0; i < legacy.sentences.size(); ++i) {
    if (legacy.truths[i].kind != SentenceKind::kMisparse) continue;
    EXPECT_EQ(legacy.sentences.sentences()[i].candidate_concepts.size(), 1u);
  }
}

}  // namespace
}  // namespace semdrift
