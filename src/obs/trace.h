#ifndef SEMDRIFT_OBS_TRACE_H_
#define SEMDRIFT_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace semdrift {

/// One structured span: a named unit of pipeline work with its scope
/// (concept, epoch, attempt), an outcome tag, free-form key=value tags, and
/// timing.
///
/// Determinism contract: every field except the timing block (`wall_us`,
/// `start_ns`, `dur_ns`) and `thread` is a deterministic function of the run
/// — spans are only ever recorded from *serial* driver contexts (stage
/// drivers, outcome merges, round loops), never from inside parallel
/// workers, so the recording order, the sequence ids and the tag contents
/// are bit-identical at any thread count. Parallel work contributes to the
/// MetricsRegistry (order-free counters) instead.
struct TraceSpan {
  static constexpr uint32_t kNoConcept = 0xffffffffu;

  /// Deterministic sequence id (recording order).
  uint64_t id = 0;
  /// Dotted span name, e.g. "clean.round", "health.concept".
  std::string name;
  /// Owning concept; kNoConcept for global spans.
  uint32_t concept_id = kNoConcept;
  /// Extraction iteration or cleaning round (TraceRecorder::SetEpoch);
  /// -1 outside any epoch.
  int epoch = -1;
  /// Retry count for outcome spans; 0 otherwise.
  int attempt = 0;
  /// "ok", "retried", "degraded", "quarantined", "failed", "cancelled" or
  /// empty for pure timing spans.
  std::string outcome;
  /// Extra structured context, insertion-ordered.
  std::vector<std::pair<std::string, std::string>> tags;

  // -- Nondeterministic timing block ----------------------------------------
  /// Wall-clock time of span start, microseconds since the Unix epoch.
  uint64_t wall_us = 0;
  /// Steady-clock start, nanoseconds since the recorder was created.
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  /// Recorder-assigned small index of the recording thread.
  uint32_t thread = 0;

  /// The deterministic fields as one tab-free line (used by the
  /// thread-count-invariance tests and by exports).
  std::string CanonicalLine() const;
};

/// Bounded in-memory span sink with JSONL and Chrome trace_event export.
///
/// Recording is mutex-guarded (spans arrive from serial contexts; the lock
/// is uncontended) and gated on an atomic enabled flag so the disabled hot
/// path costs one relaxed load. The ring keeps the newest `capacity` spans:
/// wraparound drops the *oldest* span and bumps spans_dropped() (also
/// mirrored to the "trace.spans_dropped" counter of GlobalMetrics()).
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 1 << 16);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Enable(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Current epoch stamped into recorded spans (set serially by stage
  /// drivers: the extractor sets the iteration, the cleaner the round).
  void SetEpoch(int epoch) { epoch_.store(epoch, std::memory_order_relaxed); }
  int epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Records one span (no-op when disabled). `span.id`, `span.epoch` (when
  /// left at -1), `span.wall_us` and `span.thread` are filled in here.
  void Record(TraceSpan span);

  size_t capacity() const { return capacity_; }
  uint64_t spans_recorded() const;
  uint64_t spans_dropped() const;

  /// Retained spans, oldest first (recording = deterministic order).
  std::vector<TraceSpan> Snapshot() const;

  /// Drops every retained span and zeroes the sequence/drop counters (the
  /// enabled flag and epoch are left alone).
  void Clear();

  /// One JSON object per line, every span field included. Returns false and
  /// fills `error` on I/O failure.
  bool WriteJsonl(const std::string& path, std::string* error) const;

  /// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds)
  /// loadable in chrome://tracing or https://ui.perfetto.dev.
  bool WriteChromeTrace(const std::string& path, std::string* error) const;

 private:
  /// Steady-clock nanoseconds since recorder construction.
  uint64_t NowNs() const;

  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<int> epoch_{-1};

  mutable std::mutex mu_;
  /// Ring storage: ring_[(start_ + i) % capacity_] is the i-th oldest span.
  std::vector<TraceSpan> ring_;
  size_t start_ = 0;
  size_t size_ = 0;
  uint64_t next_id_ = 0;
  uint64_t dropped_ = 0;
  std::vector<std::pair<uint64_t, uint32_t>> thread_ids_;  ///< (os id hash, index).
  uint64_t epoch_steady_ns_ = 0;  ///< Construction time, steady clock.
};

/// The process-wide recorder the pipeline hooks record into. Disabled until
/// something (the CLI's --trace-out, a test) enables it.
TraceRecorder& GlobalTrace();

/// RAII span: times its scope and records into the recorder on destruction
/// (when the recorder is enabled at construction time). Near-zero cost when
/// tracing is off: one relaxed load, no clock read, no allocation.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string name,
             uint32_t concept_id = TraceSpan::kNoConcept);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return recorder_ != nullptr; }
  void AddTag(const std::string& key, const std::string& value);
  void AddTag(const std::string& key, uint64_t value);
  void SetOutcome(std::string outcome);
  void SetConcept(uint32_t concept_id) { span_.concept_id = concept_id; }

 private:
  TraceRecorder* recorder_ = nullptr;  ///< nullptr when tracing was off.
  TraceSpan span_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_OBS_TRACE_H_
