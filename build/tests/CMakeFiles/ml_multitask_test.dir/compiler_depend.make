# Empty compiler generated dependencies file for ml_multitask_test.
# This may be replaced when dependencies are built.
