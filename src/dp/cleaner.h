#ifndef SEMDRIFT_DP_CLEANER_H_
#define SEMDRIFT_DP_CLEANER_H_

#include <functional>
#include <vector>

#include "dp/detector.h"
#include "dp/seed_labeling.h"
#include "text/sentence.h"

namespace semdrift {

/// Configuration of the DP-based cleaning pipeline (Sec. 4).
struct CleanerOptions {
  /// Which detector the pipeline trains and applies each round.
  DetectorKind detector = DetectorKind::kSemiSupervisedMultiTask;
  DetectorTrainOptions train;
  SeedLabelerConfig seeds;
  MutexParams mutex;
  /// Scoring model behind Eq. 21 and features f3/f4.
  RankModel score_model = RankModel::kRandomWalk;
  /// Cascade behaviour when pairs die (Sec. 4.2).
  CascadePolicy cascade = CascadePolicy::kAllTriggersDead;
  /// Cleaning repeats round after round until no DP fires (Sec. 4.2's
  /// "one iteration after one") or this cap.
  int max_rounds = 6;
  /// Gate the Accidental-DP rollbacks with Eq. 21 as well: an extraction
  /// produced by or triggered by a flagged Accidental DP is only rolled
  /// back when the re-scored attachment disagrees (ambiguous sentences) or
  /// when the pair rests on a single unambiguous sentence (Property 3's
  /// "accidental" signature). Protects against detector false positives;
  /// turning it off gives the paper's unconditional treatment (ablated in
  /// bench_micro).
  bool eq21_gate_accidental = true;
  /// Laplace smoothing of the per-instance attachment votes (see
  /// SmoothedAttachmentVote).
  double eq21_smoothing = 0.5;
  /// A DP-implicated extraction is also rolled back when the average
  /// smoothed vote for its extracted concept falls below this floor — the
  /// "supported by weak evidence" signature of Property 4. Set to 0 to
  /// disable and use the pure argmax check.
  double eq21_min_average_vote = 0.42;
  /// Retrain the detector on the cleaned KB each round; turning this off
  /// reuses the round-1 detector (ablated in bench_micro).
  bool retrain_each_round = true;
};

/// One Eq. 21 adjudication of an extraction triggered by an Intentional DP.
struct SentenceCheckDecision {
  uint32_t record_id = 0;
  ConceptId extracted_concept;
  ConceptId best_concept;
  bool rolled_back = false;
};

/// What a cleaning run did.
struct CleaningReport {
  int rounds = 0;
  /// Pairs flagged per category, accumulated over rounds (deduplicated).
  std::vector<IsAPair> accidental_dps;
  std::vector<IsAPair> intentional_dps;
  /// Every Eq. 21 adjudication performed (for the Table 5 pstc/rstc eval).
  std::vector<SentenceCheckDecision> sentence_checks;
  /// Total extraction records rolled back (including cascades).
  size_t records_rolled_back = 0;
  /// Live pairs before and after.
  size_t live_pairs_before = 0;
  size_t live_pairs_after = 0;
};

/// Wiring for a supervised clean (util/supervisor.h): guarded stages,
/// quarantine-aware scope filtering, and a per-round checkpoint callback.
struct SupervisedCleanHooks {
  /// Required. Owns the policy, the fault plan and the health report.
  Supervisor* supervisor = nullptr;
  /// First round to execute. Resume support: rounds below this already ran
  /// against the restored KB before its checkpoint was written, and each
  /// round is a deterministic function of KB state, so restarting at
  /// first_round reproduces the uninterrupted run's remaining rounds.
  int first_round = 1;
  /// Called after every completed round with the cleaned KB (checkpoint
  /// writing). A non-OK status aborts cleaning with that status.
  std::function<Status(int round, const KnowledgeBase& kb)> on_round;
};

/// The DP-based cleaner (Sec. 4): per round it rebuilds the mutex index and
/// the score cache from live KB state, re-labels seeds, trains the
/// configured detector, classifies every live instance of the scoped
/// concepts, then
///   * for Accidental DPs: removes the pair itself and rolls back every
///     extraction it triggered;
///   * for Intentional DPs: re-scores each triggered sentence with Eq. 21
///     and rolls back extractions whose concept is not the argmax;
/// with pair deaths cascading per CleanerOptions::cascade. Rounds repeat
/// until a round changes nothing.
class DpCleaner {
 public:
  /// `sentences` provides the Eq. 21 candidate sets; `verified` feeds the
  /// seed labeler; `num_concepts` bounds concept-id space for the index.
  DpCleaner(const SentenceStore* sentences, VerifiedSource verified,
            size_t num_concepts, CleanerOptions options = {});

  /// Cleans `kb` in place over the given concept scope.
  CleaningReport Clean(KnowledgeBase* kb, const std::vector<ConceptId>& scope) const;

  /// Scoped re-cleaning entry point for incremental (streaming) epochs:
  /// cleans `dirty` ∩ `within` (the effective scope is sorted and
  /// deduplicated; an empty `within` means no restriction). Per-round
  /// feature state (mutex index, score cache, seeds) is rebuilt from the
  /// whole live KB either way and classification is per concept, so a
  /// round's detections on the scoped concepts match what a full-scope round
  /// would flag on them; what scoping gives up is DPs *outside* the dirty
  /// closure and their cascades — the divergence the streaming pipeline's
  /// periodic full rebuilds bound. Returns Clean()'s report (empty scope:
  /// a zero-round no-op report).
  CleaningReport CleanDirty(KnowledgeBase* kb, const std::vector<ConceptId>& dirty,
                            const std::vector<ConceptId>& within) const;

  /// Cleans under a supervision layer: score warm-up, training-data
  /// collection, detector training and per-concept classification each run
  /// inside a StageGuard; quarantined concepts drop out of the live scope
  /// between stages; hooks.on_round fires after each completed round. With
  /// no fault injected and no stage failing, the KB and report are
  /// bit-identical to Clean() at any thread count.
  Result<CleaningReport> CleanSupervised(KnowledgeBase* kb,
                                         const std::vector<ConceptId>& scope,
                                         const SupervisedCleanHooks& hooks) const;

  const CleanerOptions& options() const { return options_; }

 private:
  /// Shared round loop; `hooks == nullptr` is the plain unsupervised path.
  Result<CleaningReport> CleanImpl(KnowledgeBase* kb,
                                   const std::vector<ConceptId>& scope,
                                   const SupervisedCleanHooks* hooks) const;

  const SentenceStore* sentences_;
  VerifiedSource verified_;
  size_t num_concepts_;
  CleanerOptions options_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_DP_CLEANER_H_
