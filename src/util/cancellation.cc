#include "util/cancellation.h"

namespace semdrift {

namespace {

thread_local const CancellationToken* t_current_token = nullptr;

}  // namespace

const CancellationToken* CancellationToken::Current() { return t_current_token; }

ScopedCancellation::ScopedCancellation(const CancellationToken* token)
    : previous_(t_current_token) {
  t_current_token = token;
}

ScopedCancellation::~ScopedCancellation() { t_current_token = previous_; }

void PollCancellation(const char* where) {
  const CancellationToken* token = t_current_token;
  if (token == nullptr || !token->ShouldStop()) return;
  throw StageCancelledError(std::string("cancelled in ") + where +
                            " (deadline exceeded or stage cancelled)");
}

}  // namespace semdrift
