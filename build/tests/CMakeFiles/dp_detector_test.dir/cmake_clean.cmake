file(REMOVE_RECURSE
  "CMakeFiles/dp_detector_test.dir/dp_detector_test.cc.o"
  "CMakeFiles/dp_detector_test.dir/dp_detector_test.cc.o.d"
  "dp_detector_test"
  "dp_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
