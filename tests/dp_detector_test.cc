#include <gtest/gtest.h>

#include "dp/detector.h"
#include "util/rng.h"

namespace semdrift {
namespace {

/// Synthetic, feature-level training data with a known planted structure:
///   non-DPs:        f1 high, f2 = 0, f3 ~ 1.5, f4 high
///   Intentional DP: f1 low,  f2 >= 1, f3 ~ 1.5, f4 low
///   Accidental DP:  f1 ~ 0,  f2 >= 1, f3 ~ 0.1, f4 ~ 0
TrainingData MakePlantedData(int concepts, int per_class, uint64_t seed,
                             double unlabeled_fraction = 0.0) {
  Rng rng(seed);
  TrainingData data;
  uint32_t instance_id = 0;
  for (int c = 0; c < concepts; ++c) {
    ConceptTrainingData entry;
    entry.concept_id = ConceptId(static_cast<uint32_t>(c));
    auto add = [&](DpClass cls, FeatureVector f) {
      entry.instances.push_back(InstanceId(instance_id++));
      entry.features.push_back(f);
      entry.seed_labels.push_back(rng.NextBool(unlabeled_fraction)
                                      ? DpClass::kUnlabeled
                                      : cls);
    };
    for (int i = 0; i < per_class; ++i) {
      add(DpClass::kNonDP, {0.5 + 0.2 * rng.NextDouble(), 0.0,
                            1.2 + rng.NextDouble(), 1.0 + rng.NextDouble()});
      add(DpClass::kIntentionalDP,
          {0.05 * rng.NextDouble(), 1.0 + static_cast<double>(rng.NextBounded(3)),
           1.2 + rng.NextDouble(), 0.1 * rng.NextDouble()});
      add(DpClass::kAccidentalDP,
          {0.01 * rng.NextDouble(), 1.0, 0.05 + 0.1 * rng.NextDouble(),
           0.02 * rng.NextDouble()});
    }
    data.push_back(std::move(entry));
  }
  return data;
}

double AccuracyOn(const DpDetector& detector, const TrainingData& data,
                  const TrainingData& truth_source) {
  size_t hits = 0;
  size_t total = 0;
  for (size_t c = 0; c < data.size(); ++c) {
    for (size_t i = 0; i < data[c].instances.size(); ++i) {
      DpClass truth = truth_source[c].seed_labels[i];
      if (truth == DpClass::kUnlabeled) continue;
      ++total;
      hits += detector.Classify(data[c].concept_id, data[c].features[i]) == truth;
    }
  }
  return total > 0 ? static_cast<double>(hits) / total : 0.0;
}

TEST(AdHocDetectorTest, LearnsThresholdDirectionAndType) {
  TrainingData data = MakePlantedData(3, 20, 1);
  DetectorTrainOptions options;
  auto detector = TrainDetector(DetectorKind::kAdHoc1, data, options);
  ASSERT_NE(detector, nullptr);
  // f1 below threshold -> DP.
  auto* adhoc = dynamic_cast<AdHocDetector*>(detector.get());
  ASSERT_NE(adhoc, nullptr);
  EXPECT_TRUE(adhoc->dp_below());
  EXPECT_EQ(adhoc->property_index(), 0);
  // Classifies planted prototypes.
  EXPECT_EQ(detector->Classify(ConceptId(0), {0.6, 0.0, 1.5, 1.5}),
            DpClass::kNonDP);
  EXPECT_EQ(detector->Classify(ConceptId(0), {0.01, 2.0, 1.5, 0.05}),
            DpClass::kIntentionalDP);
  EXPECT_EQ(detector->Classify(ConceptId(0), {0.0, 1.0, 0.05, 0.0}),
            DpClass::kAccidentalDP);
}

TEST(AdHocDetectorTest, F2DirectionIsAbove) {
  TrainingData data = MakePlantedData(3, 20, 2);
  DetectorTrainOptions options;
  auto detector = TrainDetector(DetectorKind::kAdHoc2, data, options);
  ASSERT_NE(detector, nullptr);
  auto* adhoc = dynamic_cast<AdHocDetector*>(detector.get());
  ASSERT_NE(adhoc, nullptr);
  EXPECT_FALSE(adhoc->dp_below());  // DPs have larger f2.
}

TEST(AdHocDetectorTest, NullWhenNoLabels) {
  TrainingData data = MakePlantedData(2, 10, 3, /*unlabeled_fraction=*/1.0);
  DetectorTrainOptions options;
  EXPECT_EQ(TrainDetector(DetectorKind::kAdHoc1, data, options), nullptr);
}

TEST(AdHocDetectorTest, NullWhenSingleClass) {
  TrainingData data;
  ConceptTrainingData entry;
  entry.concept_id = ConceptId(0);
  for (int i = 0; i < 5; ++i) {
    entry.instances.push_back(InstanceId(i));
    entry.features.push_back({0.5, 0, 1, 1});
    entry.seed_labels.push_back(DpClass::kNonDP);
  }
  data.push_back(std::move(entry));
  EXPECT_EQ(TrainDetector(DetectorKind::kAdHoc1, data, DetectorTrainOptions{}),
            nullptr);
}

TEST(SupervisedDetectorTest, HighAccuracyOnPlantedData) {
  TrainingData data = MakePlantedData(4, 25, 5);
  DetectorTrainOptions options;
  auto detector = TrainDetector(DetectorKind::kSupervised, data, options);
  ASSERT_NE(detector, nullptr);
  EXPECT_GT(AccuracyOn(*detector, data, data), 0.97);
}

TEST(SemiSupervisedDetectorTest, LearnsWithUnlabeledMass) {
  TrainingData labeled = MakePlantedData(4, 25, 7, /*unlabeled_fraction=*/0.0);
  TrainingData data = MakePlantedData(4, 25, 7, /*unlabeled_fraction=*/0.7);
  DetectorTrainOptions options;
  auto detector = TrainDetector(DetectorKind::kSemiSupervised, data, options);
  ASSERT_NE(detector, nullptr);
  // Evaluate against the fully-labeled twin (same features, same seed).
  EXPECT_GT(AccuracyOn(*detector, data, labeled), 0.85);
}

TEST(MultiTaskDetectorTest, LearnsAcrossConcepts) {
  TrainingData labeled = MakePlantedData(5, 20, 9, 0.0);
  TrainingData data = MakePlantedData(5, 20, 9, 0.6);
  DetectorTrainOptions options;
  auto detector =
      TrainDetector(DetectorKind::kSemiSupervisedMultiTask, data, options);
  ASSERT_NE(detector, nullptr);
  EXPECT_GT(AccuracyOn(*detector, data, labeled), 0.85);
}

TEST(MultiTaskDetectorTest, FallbackServesConceptsWithoutLabels) {
  TrainingData data = MakePlantedData(3, 20, 11);
  // Add a concept with purely unlabeled rows.
  ConceptTrainingData orphan;
  orphan.concept_id = ConceptId(99);
  for (int i = 0; i < 10; ++i) {
    orphan.instances.push_back(InstanceId(1000 + i));
    orphan.features.push_back({0.6, 0.0, 1.4, 1.2});
    orphan.seed_labels.push_back(DpClass::kUnlabeled);
  }
  data.push_back(std::move(orphan));
  DetectorTrainOptions options;
  auto detector =
      TrainDetector(DetectorKind::kSemiSupervisedMultiTask, data, options);
  ASSERT_NE(detector, nullptr);
  // Orphan concept gets the fallback classifier and still classifies the
  // prototypical non-DP correctly.
  EXPECT_EQ(detector->Classify(ConceptId(99), {0.6, 0.0, 1.4, 1.2}),
            DpClass::kNonDP);
}

TEST(DetectorDeterminismTest, SameSeedSameDetector) {
  TrainingData data = MakePlantedData(3, 15, 13, 0.5);
  DetectorTrainOptions options;
  options.seed = 5;
  auto a = TrainDetector(DetectorKind::kSemiSupervisedMultiTask, data, options);
  auto b = TrainDetector(DetectorKind::kSemiSupervisedMultiTask, data, options);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    FeatureVector f{rng.NextDouble(), static_cast<double>(rng.NextBounded(3)),
                    2 * rng.NextDouble(), 2 * rng.NextDouble()};
    EXPECT_EQ(a->Classify(ConceptId(0), f), b->Classify(ConceptId(0), f));
  }
}

TEST(CollectTrainingDataTest, SkipsEmptyConcepts) {
  KnowledgeBase kb;
  kb.ApplyExtraction(SentenceId(0), ConceptId(0), {InstanceId(1)}, {}, 1);
  MutexIndex mutex(kb, 2);
  ScoreCache scores(&kb, RankModel::kRandomWalk);
  FeatureExtractor features(&kb, &mutex, &scores);
  SeedLabeler seeds(&kb, &mutex, [](const IsAPair&) { return false; });
  TrainingData data = CollectTrainingData(
      kb, &features, seeds, {ConceptId(0), ConceptId(1)});
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0].concept_id, ConceptId(0));
  EXPECT_EQ(data[0].instances.size(), 1u);
  EXPECT_EQ(data[0].features.size(), 1u);
  EXPECT_EQ(data[0].seed_labels.size(), 1u);
}

}  // namespace
}  // namespace semdrift
