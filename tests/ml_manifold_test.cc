#include <gtest/gtest.h>

#include "ml/knn.h"
#include "ml/manifold.h"
#include "ml/matrix.h"
#include "util/rng.h"

namespace semdrift {
namespace {

TEST(KnnTest, SelfIsFirstNeighbor) {
  Matrix x(4, 1);
  x(0, 0) = 0;
  x(1, 0) = 1;
  x(2, 0) = 10;
  x(3, 0) = 11;
  auto neighborhoods = KNearestNeighbors(x, 1);
  ASSERT_EQ(neighborhoods.size(), 4u);
  EXPECT_EQ(neighborhoods[0][0], 0u);
  EXPECT_EQ(neighborhoods[0][1], 1u);
  EXPECT_EQ(neighborhoods[2][0], 2u);
  EXPECT_EQ(neighborhoods[2][1], 3u);
}

TEST(KnnTest, KLargerThanPopulationClamps) {
  Matrix x(3, 2);
  auto neighborhoods = KNearestNeighbors(x, 10);
  for (const auto& nb : neighborhoods) EXPECT_EQ(nb.size(), 3u);
}

TEST(KnnTest, EuclideanOrdering) {
  Matrix x(3, 2);
  x(0, 0) = 0;
  x(0, 1) = 0;
  x(1, 0) = 3;
  x(1, 1) = 0;
  x(2, 0) = 1;
  x(2, 1) = 1;
  auto neighborhoods = KNearestNeighbors(x, 2);
  // Nearest to row 0 is row 2 (d^2=2), then row 1 (d^2=9).
  EXPECT_EQ(neighborhoods[0][1], 2u);
  EXPECT_EQ(neighborhoods[0][2], 1u);
}

class ManifoldPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ManifoldPropertyTest, RegularizerIsSymmetricPsd) {
  Rng rng(GetParam());
  size_t n = 30;
  size_t r = 5;
  Matrix x(n, r);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < r; ++j) x(i, j) = rng.NextGaussian();
  ManifoldOptions options;
  options.k = 4;
  Matrix a = BuildManifoldRegularizer(x, options);
  ASSERT_EQ(a.rows(), r);
  ASSERT_EQ(a.cols(), r);
  // Symmetric.
  EXPECT_LT(a.MaxAbsDiff(a.Transpose()), 1e-10);
  // PSD (Lemma 1 / Theorem 1): all eigenvalues >= -eps.
  EigenResult eigen = SymmetricEigen(a);
  EXPECT_GE(eigen.values.front(), -1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManifoldPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(ManifoldTest, PenalizesDirectionsThatVaryLocally) {
  // Two tight clusters along dimension 0; dimension 1 is pure noise inside
  // each neighborhood. A linear function of dim 1 cannot be locally
  // predicted, so the regularizer must charge dim-1-aligned classifiers
  // more than dim-0-aligned ones (which are locally constant).
  Rng rng(42);
  size_t n = 60;
  Matrix x(n, 2);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = i < n / 2 ? -5.0 : 5.0;
    x(i, 1) = rng.NextGaussian();
  }
  ManifoldOptions options;
  options.k = 5;
  Matrix a = BuildManifoldRegularizer(x, options);
  // w aligned with the noisy dimension has larger quadratic cost.
  double cost_dim0 = a(0, 0);
  double cost_dim1 = a(1, 1);
  EXPECT_GT(cost_dim1, cost_dim0);
}

TEST(ManifoldTest, ZeroDataGivesZeroRegularizer) {
  Matrix x(10, 3);  // All zeros.
  ManifoldOptions options;
  options.k = 3;
  Matrix a = BuildManifoldRegularizer(x, options);
  EXPECT_LT(a.FrobeniusNormSq(), 1e-20);
}

TEST(ManifoldTest, LocalLambdaScalesPenalty) {
  Rng rng(7);
  Matrix x(20, 3);
  for (size_t i = 0; i < 20; ++i)
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.NextGaussian();
  ManifoldOptions small;
  small.k = 4;
  small.local_lambda = 0.1;
  ManifoldOptions large = small;
  large.local_lambda = 10.0;
  Matrix a_small = BuildManifoldRegularizer(x, small);
  Matrix a_large = BuildManifoldRegularizer(x, large);
  // Larger local ridge means local predictors fit worse, increasing the
  // disagreement penalty overall.
  EXPECT_GT(a_large.Trace(), a_small.Trace());
}

}  // namespace
}  // namespace semdrift
