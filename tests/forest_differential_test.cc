// Differential tests for the histogram (binned) forest trainer against the
// exact trainer. The binned trainer is a different algorithm — same model
// family, coarser split-candidate set — so the contract is *agreement*, not
// bit-identity: predictions must agree above a fixed floor on synthetic
// data, and at the pipeline level the supervised detector must make the
// same decisions either way on a broad sample of random worlds.

#include <gtest/gtest.h>

#include <vector>

#include "dp/detector.h"
#include "dp/features.h"
#include "dp/seed_labeling.h"
#include "ml/random_forest.h"
#include "mutex/mutex_index.h"
#include "rank/scorers.h"
#include "testing/random_structures.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace semdrift {
namespace {

/// Gaussian blobs: a problem both trainers solve near-perfectly, so any
/// systematic binned/exact divergence shows up as agreement loss.
void MakeBlobData(size_t n, uint64_t seed, std::vector<std::vector<double>>* x,
                  std::vector<int>* y) {
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    int cls = static_cast<int>(i % 3);
    x->push_back({cls * 2.0 + 0.4 * rng.NextGaussian(),
                  -cls * 1.5 + 0.4 * rng.NextGaussian(),
                  rng.NextDouble(),
                  cls * 1.0 + 0.3 * rng.NextGaussian()});
    y->push_back(cls);
  }
}

TEST(ForestDifferentialTest, PredictionsAgreeWithExactTrainerAboveFloor) {
  int agree = 0;
  int total = 0;
  for (uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    std::vector<std::vector<double>> x;
    std::vector<int> y;
    MakeBlobData(600, seed, &x, &y);
    RandomForestOptions options;
    options.num_trees = 30;
    options.seed = seed;
    RandomForest binned;
    ASSERT_TRUE(binned.Fit(x, y, 3, options).ok());
    options.exact_splits = true;
    RandomForest exact;
    ASSERT_TRUE(exact.Fit(x, y, 3, options).ok());
    for (const auto& point : x) {
      agree += binned.Predict(point) == exact.Predict(point);
      ++total;
    }
  }
  // Fixed floor: the two trainers disagree only near decision boundaries.
  EXPECT_GE(agree, static_cast<int>(0.97 * total))
      << agree << "/" << total << " predictions agree";
}

TEST(ForestDifferentialTest, LowCardinalityFeaturesGiveIdenticalCandidates) {
  // When every feature has <= max_bins distinct values, the binned cut set
  // IS the exact midpoint set, so both trainers see the same candidate
  // thresholds and (same seed) produce trees predicting identically.
  Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    x.push_back({static_cast<double>(rng.NextBounded(12)),
                 static_cast<double>(rng.NextBounded(5))});
    y.push_back((x.back()[0] > 5.0) == (x.back()[1] > 2.0) ? 1 : 0);
  }
  RandomForestOptions options;
  options.num_trees = 20;
  options.seed = 3;
  RandomForest binned;
  ASSERT_TRUE(binned.Fit(x, y, 2, options).ok());
  options.exact_splits = true;
  RandomForest exact;
  ASSERT_TRUE(exact.Fit(x, y, 2, options).ok());
  int agree = 0;
  for (const auto& point : x) agree += binned.Predict(point) == exact.Predict(point);
  EXPECT_GE(agree, static_cast<int>(0.99 * x.size()));
}

TEST(ForestDifferentialTest, DetectorDecisionsMatchAcrossRandomWorlds) {
  // Pipeline-level differential: across >= 20 random worlds, the supervised
  // detector trained with the binned forest must classify every live
  // instance exactly like the one trained with the exact forest. Worlds
  // whose seed labeler produces no labels train no detector; the seed range
  // is wide enough that many worlds do train one.
  int worlds_with_detector = 0;
  int decisions = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    World world = property::RandomWorld(seed);
    size_t num_sentences = 0;
    KnowledgeBase kb = property::RandomKb(world, seed, &num_sentences);
    std::vector<ConceptId> scope;
    for (size_t c = 0; c < world.num_concepts(); ++c) {
      scope.push_back(ConceptId(static_cast<uint32_t>(c)));
    }
    MutexIndex mutex(kb, scope.size());
    ScoreCache scores(&kb, RankModel::kRandomWalk);
    scores.Warm(scope);
    FeatureExtractor features(&kb, &mutex, &scores);
    SeedLabeler seeds(&kb, &mutex, [&world](const IsAPair& p) {
      return world.IsVerified(p.concept_id, p.instance);
    });
    TrainingData data = CollectTrainingData(kb, &features, seeds, scope);
    if (!HasLabeled(data)) continue;

    DetectorTrainOptions options;
    options.seed = seed;
    // A bigger-than-default forest: the two trainers grow slightly
    // different trees (different per-node RNG streams), so the per-instance
    // majority vote needs enough trees to be stable on boundary cases.
    options.forest.num_trees = 300;
    auto binned = TrainDetector(DetectorKind::kSupervised, data, options);
    options.forest.exact_splits = true;
    auto exact = TrainDetector(DetectorKind::kSupervised, data, options);
    ASSERT_EQ(binned == nullptr, exact == nullptr) << "world seed " << seed;
    if (binned == nullptr) continue;
    ++worlds_with_detector;
    for (const ConceptTrainingData& task : data) {
      for (size_t i = 0; i < task.instances.size(); ++i) {
        EXPECT_EQ(binned->Classify(task.concept_id, task.features[i]),
                  exact->Classify(task.concept_id, task.features[i]))
            << "world seed " << seed << " concept " << task.concept_id.value
            << " row " << i;
        ++decisions;
      }
    }
  }
  // The property only bites if the sweep actually exercised trained
  // detectors on real instances.
  EXPECT_GE(worlds_with_detector, 5) << "seed range trained too few detectors";
  EXPECT_GT(decisions, 100);
}

TEST(ForestDifferentialTest, BinnedForestIsBitIdenticalAcrossThreadCounts) {
  // Agreement with the exact trainer is statistical; determinism of the
  // binned trainer itself is exact. 1, 2 and 8 threads must produce
  // byte-identical probability vectors.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  MakeBlobData(500, 77, &x, &y);
  RandomForestOptions options;
  options.num_trees = 24;
  options.seed = 77;
  std::vector<std::vector<double>> baseline;
  for (int threads : {1, 2, 8}) {
    SetGlobalThreadCount(threads);
    RandomForest forest;
    ASSERT_TRUE(forest.Fit(x, y, 3, options).ok());
    std::vector<std::vector<double>> proba;
    for (const auto& point : x) proba.push_back(forest.PredictProba(point));
    if (baseline.empty()) {
      baseline = std::move(proba);
      continue;
    }
    EXPECT_EQ(proba, baseline) << "threads " << threads;
  }
  SetGlobalThreadCount(0);
}

}  // namespace
}  // namespace semdrift
