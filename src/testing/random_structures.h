#ifndef SEMDRIFT_TESTING_RANDOM_STRUCTURES_H_
#define SEMDRIFT_TESTING_RANDOM_STRUCTURES_H_

#include <cstddef>
#include <cstdint>

#include "corpus/world.h"
#include "kb/knowledge_base.h"
#include "util/rng.h"
#include "util/supervisor.h"

namespace semdrift {
namespace property {

/// Seeded random-structure generators shared by the property-based tests and
/// the adversarial scenario grammar (src/scenario/). Every generator is a
/// pure function of its seed (same seed -> same structure on every
/// platform), so a failing property prints the seed and the failure replays
/// exactly. The distributions are deliberately skewed toward small shapes:
/// small inputs ARE the shrunk counterexamples.

/// A random *friendly* world spec: 3-12 concepts, 2-6..26 members each,
/// randomized polysemy/twin/verified rates spanning the interesting corners
/// (no twins at all vs. heavy overlap, nothing verified vs. majority
/// verified). The scenario grammar starts from this and then pushes
/// individual dimensions into hostile territory.
WorldSpec RandomWorldSpec(Rng* rng);

/// RandomWorldSpec materialized: draws a spec and generates the world from
/// the same stream.
World RandomWorld(uint64_t seed);

/// A random but always-valid knowledge base over `world`: 5-80 extraction
/// events (fresh sentence ids, 1-3 distinct true members of a random
/// concept, triggers drawn from pairs already live for that concept so the
/// trigger graph is well-formed) followed by a burst of random rollbacks
/// under random cascade policies. The result passes
/// KnowledgeBase::Validate(world.num_concepts(), *num_sentences) by
/// construction — the property tests assert it anyway.
KnowledgeBase RandomKb(const World& world, uint64_t seed,
                       size_t* num_sentences);

/// A random health report over `world`'s concept id space: per-concept
/// outcomes across all stages, dropped instances, and sometimes a detector
/// fallback. Used to cover the snapshot's quarantine/degraded flags.
RunHealthReport RandomHealth(const World& world, uint64_t seed);

}  // namespace property
}  // namespace semdrift

#endif  // SEMDRIFT_TESTING_RANDOM_STRUCTURES_H_
