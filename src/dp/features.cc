#include "dp/features.h"

#include <cmath>

namespace semdrift {

double SparseCosine(const std::unordered_map<InstanceId, int>& a,
                    const std::unordered_map<InstanceId, int>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [key, value] : small) {
    auto it = large.find(key);
    if (it != large.end()) dot += static_cast<double>(value) * it->second;
  }
  if (dot == 0.0) return 0.0;
  double norm_a = 0.0;
  for (const auto& [key, value] : a) {
    (void)key;
    norm_a += static_cast<double>(value) * value;
  }
  double norm_b = 0.0;
  for (const auto& [key, value] : b) {
    (void)key;
    norm_b += static_cast<double>(value) * value;
  }
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

const FeatureExtractor::ConceptContext& FeatureExtractor::ContextFor(
    ConceptId c) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = contexts_.find(c.value);
    if (it != contexts_.end()) return *it->second;
  }
  // Built outside the lock: Concept(c) may run a full random walk on a cold
  // cache. A racing duplicate build produces an identical context (all
  // inputs are deterministic); the first insert wins.
  auto ctx = std::make_unique<ConceptContext>();
  for (const auto& [instance, count] : kb_->Iter1InstancesOf(c)) {
    ctx->core.emplace(instance, count);
    ctx->core_norm_sq += static_cast<double>(count) * count;
  }
  ctx->scores = &scores_->Concept(c);
  ctx->scale = static_cast<double>(ctx->scores->size());
  if (ctx->scale <= 0.0) ctx->scale = 1.0;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = contexts_.emplace(c.value, std::move(ctx));
  (void)inserted;
  return *it->second;
}

double FeatureExtractor::F1FromSub(
    const ConceptContext& ctx,
    const std::unordered_map<InstanceId, int>& sub) const {
  if (sub.empty() || ctx.core.empty()) return 0.0;
  // Same arithmetic (and accumulation order) as SparseCosine(sub, core),
  // with the core's norm precomputed in the context.
  const auto& small = sub.size() <= ctx.core.size() ? sub : ctx.core;
  const auto& large = sub.size() <= ctx.core.size() ? ctx.core : sub;
  double dot = 0.0;
  for (const auto& [key, value] : small) {
    auto it = large.find(key);
    if (it != large.end()) dot += static_cast<double>(value) * it->second;
  }
  if (dot == 0.0) return 0.0;
  double sub_norm_sq = 0.0;
  for (const auto& [key, value] : sub) {
    (void)key;
    sub_norm_sq += static_cast<double>(value) * value;
  }
  return dot / (std::sqrt(sub_norm_sq) * std::sqrt(ctx.core_norm_sq));
}

double FeatureExtractor::F1(ConceptId c, InstanceId e) const {
  std::unordered_map<InstanceId, int> sub = kb_->SubInstancesOf(IsAPair{c, e});
  return F1FromSub(ContextFor(c), sub);
}

FeatureVector FeatureExtractor::Extract(ConceptId c, InstanceId e) const {
  const ConceptContext& ctx = ContextFor(c);
  // sub(e) once, shared by f1 and f4 (the seed computed it twice).
  std::unordered_map<InstanceId, int> sub = kb_->SubInstancesOf(IsAPair{c, e});

  FeatureVector features{};
  features[0] = F1FromSub(ctx, sub);
  features[1] = static_cast<double>(mutex_->F2Count(c, e));
  // Walk scores sum to 1 within a concept, so their magnitude depends on
  // concept size. The paper trains one detector per concept where that is
  // harmless; our pooled KPCA representation and multi-task training share
  // one space across concepts, so f3/f4 are rescaled to the within-concept
  // uniform level (1.0 = the score a uniform visit distribution would give).
  auto score_of = [&](InstanceId instance) {
    auto it = ctx.scores->find(instance);
    return it == ctx.scores->end() ? 0.0 : it->second;
  };
  features[2] = score_of(e) * ctx.scale;
  // f4: unweighted average random-walk score over distinct sub-instances.
  if (!sub.empty()) {
    double total = 0.0;
    for (const auto& [instance, count] : sub) {
      (void)count;
      total += score_of(instance) * ctx.scale;
    }
    features[3] = total / static_cast<double>(sub.size());
  }
  return features;
}

}  // namespace semdrift
