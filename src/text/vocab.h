#ifndef SEMDRIFT_TEXT_VOCAB_H_
#define SEMDRIFT_TEXT_VOCAB_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace semdrift {

/// Bidirectional string <-> dense-id interning table. The corpus, the
/// knowledge base and the trigger graphs all speak dense 32-bit ids; this is
/// the single place strings live. Ids are assigned in insertion order and are
/// stable for the lifetime of the vocabulary.
class Vocab {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  Vocab() = default;
  Vocab(const Vocab&) = default;
  Vocab& operator=(const Vocab&) = default;

  /// Interns `term`, returning its id (existing or newly assigned).
  uint32_t Intern(std::string_view term);

  /// Looks a term up without interning. Returns kNotFound when absent.
  uint32_t Find(std::string_view term) const;

  bool Contains(std::string_view term) const { return Find(term) != kNotFound; }

  /// Term for an id. Precondition: id < size().
  const std::string& TermOf(uint32_t id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> terms_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_TEXT_VOCAB_H_
