# Empty dependencies file for dp_seeds_test.
# This may be replaced when dependencies are built.
