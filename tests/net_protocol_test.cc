#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "net/hash_ring.h"
#include "net/line_channel.h"

namespace semdrift {
namespace {

// -- LineDecoder -------------------------------------------------------------

std::vector<std::string> DrainLines(LineDecoder* decoder) {
  std::vector<std::string> lines;
  std::string line;
  for (;;) {
    const LineDecoder::Event ev = decoder->Next(&line);
    if (ev == LineDecoder::Event::kNone) break;
    lines.push_back(ev == LineDecoder::Event::kOversized ? "<OVERSIZED>"
                                                         : line);
  }
  return lines;
}

TEST(LineDecoderTest, SingleCompleteLine) {
  LineDecoder decoder(1024);
  decoder.Feed("stats\n");
  EXPECT_EQ(DrainLines(&decoder),
            (std::vector<std::string>{"stats"}));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(LineDecoderTest, VerbSplitAcrossReads) {
  // The epoll read loop delivers arbitrary fragments; a verb split across
  // two (or five) reads must reassemble byte-exactly.
  LineDecoder decoder(1024);
  decoder.Feed("insta");
  EXPECT_TRUE(DrainLines(&decoder).empty());
  decoder.Feed("nces-of\tanimal");
  EXPECT_TRUE(DrainLines(&decoder).empty());
  decoder.Feed("\t5\nis-");
  EXPECT_EQ(DrainLines(&decoder),
            (std::vector<std::string>{"instances-of\tanimal\t5"}));
  decoder.Feed("a\tlion\tanimal\n");
  EXPECT_EQ(DrainLines(&decoder),
            (std::vector<std::string>{"is-a\tlion\tanimal"}));
}

TEST(LineDecoderTest, ByteAtATime) {
  LineDecoder decoder(1024);
  const std::string input = "mutex\ta\tb\nstats\n";
  std::vector<std::string> got;
  for (char c : input) {
    decoder.Feed(std::string_view(&c, 1));
    for (const std::string& line : DrainLines(&decoder)) got.push_back(line);
  }
  EXPECT_EQ(got, (std::vector<std::string>{"mutex\ta\tb", "stats"}));
}

TEST(LineDecoderTest, ManyLinesInOneRead) {
  LineDecoder decoder(1024);
  decoder.Feed("a\nb\nc\nd");
  EXPECT_EQ(DrainLines(&decoder), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(decoder.buffered_bytes(), 1u);
}

TEST(LineDecoderTest, CrLfStripped) {
  LineDecoder decoder(1024);
  decoder.Feed("stats\r\nmetrics\r\n");
  EXPECT_EQ(DrainLines(&decoder),
            (std::vector<std::string>{"stats", "metrics"}));
}

TEST(LineDecoderTest, OversizedLineDiscardedInOrder) {
  LineDecoder decoder(8);
  // ok, oversized, ok — the oversized event must hold its slot between them
  // so the response stream stays aligned with pipelined requests.
  decoder.Feed("short\n0123456789abcdef\nok\n");
  EXPECT_EQ(DrainLines(&decoder),
            (std::vector<std::string>{"short", "<OVERSIZED>", "ok"}));
}

TEST(LineDecoderTest, OversizedSpanningManyReads) {
  LineDecoder decoder(8);
  LineDecoder::Event ev;
  std::string line;
  for (int i = 0; i < 100; ++i) {
    decoder.Feed("xxxxxxxxxx");  // 1000 bytes total, never buffered whole.
    ev = decoder.Next(&line);
    EXPECT_EQ(ev, LineDecoder::Event::kNone);
  }
  // Discarding, not accumulating: memory stays bounded by the cap.
  EXPECT_LE(decoder.buffered_bytes(), 8u);
  decoder.Feed("\nafter\n");
  EXPECT_EQ(DrainLines(&decoder),
            (std::vector<std::string>{"<OVERSIZED>", "after"}));
}

TEST(LineDecoderTest, ResidueOnEof) {
  LineDecoder decoder(1024);
  decoder.Feed("stats");
  std::string residue;
  ASSERT_TRUE(decoder.TakeResidue(&residue));
  EXPECT_EQ(residue, "stats");
  EXPECT_FALSE(decoder.TakeResidue(&residue));
}

TEST(LineDecoderTest, NoResidueAfterCompleteLine) {
  LineDecoder decoder(1024);
  decoder.Feed("stats\n");
  (void)DrainLines(&decoder);
  std::string residue;
  EXPECT_FALSE(decoder.TakeResidue(&residue));
}

TEST(LineDecoderTest, OversizedResidueDropped) {
  LineDecoder decoder(4);
  decoder.Feed("0123456789");  // Peer hangs up mid-oversized-line.
  std::string residue;
  EXPECT_FALSE(decoder.TakeResidue(&residue));
}

// -- WriteQueue --------------------------------------------------------------

/// Nonblocking socketpair with a tiny send buffer so Flush() hits partial
/// writes and EAGAIN deterministically.
class WriteQueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
    const int small = 4096;
    ::setsockopt(fds_[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
    ::setsockopt(fds_[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
    ::fcntl(fds_[0], F_SETFL, O_NONBLOCK);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }

  std::string ReadAll(size_t expected) {
    std::string got;
    char buf[4096];
    while (got.size() < expected) {
      const ssize_t n = ::read(fds_[1], buf, sizeof(buf));
      if (n <= 0) break;
      got.append(buf, static_cast<size_t>(n));
    }
    return got;
  }

  int fds_[2] = {-1, -1};
};

TEST_F(WriteQueueTest, DrainsSmallPayload) {
  WriteQueue queue;
  queue.Push("OK\tresponse\n");
  EXPECT_EQ(queue.Flush(fds_[0]), WriteQueue::FlushResult::kDrained);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(ReadAll(12), "OK\tresponse\n");
}

TEST_F(WriteQueueTest, SurvivesPartialWritesAndEagain) {
  WriteQueue queue;
  // Far larger than the send buffer: the first flushes must block.
  std::string payload;
  for (int i = 0; i < 20000; ++i) {
    payload += "line-" + std::to_string(i) + "\n";
  }
  queue.Push(payload);
  std::string got;
  char buf[4096];
  bool blocked_once = false;
  while (!queue.empty()) {
    const WriteQueue::FlushResult r = queue.Flush(fds_[0]);
    ASSERT_NE(r, WriteQueue::FlushResult::kError);
    if (r == WriteQueue::FlushResult::kBlocked) {
      blocked_once = true;
      const ssize_t n = ::read(fds_[1], buf, sizeof(buf));
      ASSERT_GT(n, 0);
      got.append(buf, static_cast<size_t>(n));
    }
  }
  EXPECT_TRUE(blocked_once) << "payload fit the send buffer; enlarge it";
  got += ReadAll(payload.size() - got.size());
  EXPECT_EQ(got, payload);  // No bytes lost or reordered across EAGAIN.
}

TEST_F(WriteQueueTest, PendingBytesTracksQueue) {
  WriteQueue queue;
  queue.Push("abc");
  queue.Push("defg");
  EXPECT_EQ(queue.pending_bytes(), 7u);
  EXPECT_EQ(queue.Flush(fds_[0]), WriteQueue::FlushResult::kDrained);
  EXPECT_EQ(queue.pending_bytes(), 0u);
}

TEST_F(WriteQueueTest, ErrorOnClosedPeer) {
  WriteQueue queue;
  ::close(fds_[1]);
  fds_[1] = -1;
  queue.Push("doomed\n");
  // First flush may succeed into the kernel buffer; a later one must
  // surface the dead peer as kError (EPIPE), never SIGPIPE.
  WriteQueue::FlushResult r = queue.Flush(fds_[0]);
  for (int i = 0; i < 10 && r != WriteQueue::FlushResult::kError; ++i) {
    queue.Push("doomed\n");
    r = queue.Flush(fds_[0]);
  }
  EXPECT_EQ(r, WriteQueue::FlushResult::kError);
}

// -- ParseListenAddress ------------------------------------------------------

TEST(ParseListenAddressTest, TcpForms) {
  ListenAddress addr;
  std::string error;
  ASSERT_TRUE(ParseListenAddress("tcp:127.0.0.1:8080", &addr, &error));
  EXPECT_FALSE(addr.is_unix);
  EXPECT_EQ(addr.host, "127.0.0.1");
  EXPECT_EQ(addr.port, 8080);
  ASSERT_TRUE(ParseListenAddress("127.0.0.1:0", &addr, &error));
  EXPECT_EQ(addr.port, 0);
}

TEST(ParseListenAddressTest, UnixForm) {
  ListenAddress addr;
  std::string error;
  ASSERT_TRUE(ParseListenAddress("unix:/tmp/x.sock", &addr, &error));
  EXPECT_TRUE(addr.is_unix);
  EXPECT_EQ(addr.path, "/tmp/x.sock");
}

TEST(ParseListenAddressTest, Malformed) {
  ListenAddress addr;
  std::string error;
  EXPECT_FALSE(ParseListenAddress("unix:", &addr, &error));
  EXPECT_FALSE(ParseListenAddress("justahost", &addr, &error));
  EXPECT_FALSE(ParseListenAddress("tcp:host:", &addr, &error));
  EXPECT_FALSE(ParseListenAddress("tcp:host:notaport", &addr, &error));
  EXPECT_FALSE(ParseListenAddress("tcp:host:70000", &addr, &error));
  EXPECT_FALSE(error.empty());
}

// -- HashRing ----------------------------------------------------------------

TEST(HashRingTest, OwnerIsStableAndInRange) {
  HashRing ring(4);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "concept-" + std::to_string(i);
    const uint32_t owner = ring.OwnerOf(key);
    EXPECT_LT(owner, 4u);
    EXPECT_EQ(owner, ring.OwnerOf(key));  // Deterministic.
  }
}

TEST(HashRingTest, IdenticalAcrossInstances) {
  // The whole point of not using std::hash: two rings built in different
  // "processes" (here: instances) must agree on every key.
  HashRing a(8), b(8);
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(i * 7919);
    EXPECT_EQ(a.OwnerOf(key), b.OwnerOf(key));
  }
}

TEST(HashRingTest, ReasonableBalance) {
  HashRing ring(4, 64);
  std::vector<int> counts(4, 0);
  const int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) {
    counts[ring.OwnerOf("instance name " + std::to_string(i))]++;
  }
  for (int c : counts) {
    // Each shard should get 25% ± a generous consistent-hashing tolerance.
    EXPECT_GT(c, kKeys / 8) << "shard starved";
    EXPECT_LT(c, kKeys / 2) << "shard overloaded";
  }
}

TEST(HashRingTest, ChurnMovesOnlyAFraction) {
  HashRing four(4, 64), five(5, 64);
  const int kKeys = 10000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    if (four.OwnerOf(key) != five.OwnerOf(key)) moved++;
  }
  // Consistent hashing: adding a 5th shard should move about 1/5 of keys,
  // nowhere near the ~4/5 a modulo scheme would reshuffle.
  EXPECT_LT(moved, kKeys / 2);
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, SingleShardOwnsEverything) {
  HashRing ring(1);
  EXPECT_EQ(ring.OwnerOf(""), 0u);
  EXPECT_EQ(ring.OwnerOf("anything"), 0u);
}

}  // namespace
}  // namespace semdrift
