file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_per_concept.dir/bench_table5_per_concept.cc.o"
  "CMakeFiles/bench_table5_per_concept.dir/bench_table5_per_concept.cc.o.d"
  "bench_table5_per_concept"
  "bench_table5_per_concept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_per_concept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
