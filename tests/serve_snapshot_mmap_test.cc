#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "testing/random_structures.h"
#include "util/fault_injection.h"

namespace semdrift {
namespace {

constexpr size_t kHeaderBytes = 48;
constexpr size_t kSectionEntryBytes = 24;
constexpr int kMutexSectionIndex = 8;  // MUTX in the fixed section order.

/// Byte offset and size of one section's payload, read straight from the
/// section table of a serialized image.
void SectionSpan(const std::string& image, int section, uint64_t* offset,
                 uint64_t* size) {
  const char* entry = image.data() + kHeaderBytes +
                      static_cast<size_t>(section) * kSectionEntryBytes;
  std::memcpy(offset, entry + 8, sizeof(*offset));
  std::memcpy(size, entry + 16, sizeof(*size));
}

class SnapshotMmapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    World world = property::RandomWorld(13);
    size_t ns = 0;
    KnowledgeBase kb = property::RandomKb(world, 13, &ns);
    auto image = BuildSnapshotImage(
        CompileSnapshotParts(kb, world, nullptr, SnapshotOptions{}));
    ASSERT_TRUE(image.ok());
    image_ = new std::string(std::move(*image));

    auto reader = SnapshotReader::OpenFromBuffer(*image_, "mmap-fixture");
    ASSERT_TRUE(reader.ok());
    workload_ = new std::vector<std::string>();
    mutex_query_ = new std::string();
    for (uint32_t c = 0; c < reader->num_concepts(); ++c) {
      const std::string name(reader->ConceptName(c));
      workload_->push_back("instances-of\t" + name + "\t4");
      if (reader->ConceptEnd(c) > reader->ConceptBegin(c)) {
        const std::string member(
            reader->InstanceName(reader->PairInstance(reader->ConceptBegin(c))));
        workload_->push_back("is-a\t" + member + "\t" + name);
        workload_->push_back("concepts-of\t" + member);
        workload_->push_back("drift-score\t" + member + "\t" + name);
      }
    }
    ASSERT_GE(reader->num_concepts(), 2u);
    *mutex_query_ = "mutex\t" + std::string(reader->ConceptName(0)) + "\t" +
                    std::string(reader->ConceptName(1));
  }
  static void TearDownTestSuite() {
    delete image_;
    delete workload_;
    delete mutex_query_;
  }

  /// Writes the fixture image (optionally with one byte XOR-flipped) to a
  /// fresh file and returns its path.
  static std::string WriteImage(const std::string& name,
                                size_t flip_offset = ~size_t{0}) {
    std::string bytes = *image_;
    if (flip_offset != ~size_t{0}) {
      EXPECT_LT(flip_offset, bytes.size());
      bytes[flip_offset] ^= 0x5a;
    }
    const std::string path = ::testing::TempDir() + "/mmap_" + name + ".bin";
    EXPECT_TRUE(WriteStringToFile(bytes, path).ok());
    return path;
  }

  static SnapshotOpenOptions MmapOptions(bool eager = false) {
    SnapshotOpenOptions options;
    options.source = SnapshotSource::kMmap;
    options.eager_verify = eager;
    return options;
  }

  static std::string* image_;
  static std::vector<std::string>* workload_;
  static std::string* mutex_query_;
};

std::string* SnapshotMmapTest::image_ = nullptr;
std::vector<std::string>* SnapshotMmapTest::workload_ = nullptr;
std::string* SnapshotMmapTest::mutex_query_ = nullptr;

TEST_F(SnapshotMmapTest, MmapAnswersAreByteIdenticalToReadPath) {
  const std::string path = WriteImage("identical");
  auto read_reader = SnapshotReader::Open(path);
  auto mmap_reader = SnapshotReader::Open(path, MmapOptions());
  ASSERT_TRUE(read_reader.ok()) << read_reader.status().ToString();
  ASSERT_TRUE(mmap_reader.ok()) << mmap_reader.status().ToString();
  EXPECT_FALSE(read_reader->mmap_backed());
  EXPECT_TRUE(mmap_reader->mmap_backed());

  QueryEngine read_engine(&*read_reader);
  QueryEngine mmap_engine(&*mmap_reader);
  for (const std::string& line : *workload_) {
    EXPECT_EQ(mmap_engine.Answer(line), read_engine.Answer(line)) << line;
  }
  EXPECT_EQ(mmap_engine.Answer(*mutex_query_), read_engine.Answer(*mutex_query_));
}

TEST_F(SnapshotMmapTest, DeferredVerifyConfinesDamageToTouchedSections) {
  uint64_t mutex_offset = 0, mutex_size = 0;
  SectionSpan(*image_, kMutexSectionIndex, &mutex_offset, &mutex_size);
  ASSERT_GT(mutex_size, 0u);
  // Flip a byte in the MUTX payload. The read path (whole-file eager CRC)
  // must refuse the file outright; the deferred mmap path must open, serve
  // every verb that doesn't touch MUTX, and fail only mutex queries.
  const std::string path = WriteImage(
      "mutx_corrupt", static_cast<size_t>(mutex_offset + mutex_size / 2));
  EXPECT_FALSE(SnapshotReader::Open(path).ok());

  auto reader = SnapshotReader::Open(path, MmapOptions());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  QueryEngine engine(&*reader);
  for (const std::string& line : *workload_) {
    EXPECT_EQ(engine.Answer(line).rfind("ERR", 0), std::string::npos) << line;
  }
  const std::string failed = engine.Answer(*mutex_query_);
  ASSERT_EQ(failed.rfind("ERR\tsnapshot: ", 0), 0u) << failed;
  EXPECT_NE(failed.find("MUTX"), std::string::npos) << failed;
  EXPECT_NE(failed.find(path), std::string::npos) << failed;
  EXPECT_NE(failed.find("byte offset"), std::string::npos) << failed;
  // Sticky: the reader stays failed (no flip-flopping on retry).
  EXPECT_EQ(engine.Answer(*mutex_query_), failed);
  // And sections verified before the failure keep serving.
  EXPECT_EQ(engine.Answer((*workload_)[0]).rfind("OK", 0), 0u);
}

TEST_F(SnapshotMmapTest, EagerVerifyFailsAtOpen) {
  uint64_t mutex_offset = 0, mutex_size = 0;
  SectionSpan(*image_, kMutexSectionIndex, &mutex_offset, &mutex_size);
  const std::string path = WriteImage(
      "eager_corrupt", static_cast<size_t>(mutex_offset + mutex_size / 2));
  auto reader = SnapshotReader::Open(path, MmapOptions(/*eager=*/true));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), Status::Code::kDataLoss);
}

TEST_F(SnapshotMmapTest, EagerVerifyOnCleanFileServesEverything) {
  const std::string path = WriteImage("eager_clean");
  auto reader = SnapshotReader::Open(path, MmapOptions(/*eager=*/true));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->VerifiedSections(), kSnapSecAll);
  QueryEngine engine(&*reader);
  EXPECT_EQ(engine.Answer((*workload_)[0]).rfind("OK", 0), 0u);
}

TEST_F(SnapshotMmapTest, RefusesNonRegularFiles) {
  const std::string dir = ::testing::TempDir() + "/mmap_a_directory";
  std::filesystem::create_directories(dir);
  auto reader = SnapshotReader::Open(dir, MmapOptions());
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), Status::Code::kDataLoss);
  EXPECT_NE(reader.status().message().find("not a regular file"),
            std::string::npos)
      << reader.status().ToString();
}

TEST_F(SnapshotMmapTest, TruncationUnderTheMappingIsDetected) {
  const std::string path = WriteImage("truncated_under_map");
  auto reader = SnapshotReader::Open(path, MmapOptions());
  ASSERT_TRUE(reader.ok());
  // A publisher violating temp-and-rename truncates the file we mapped.
  // The next deferred verification must re-stat and refuse — reading the
  // vanished pages would SIGBUS.
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(image_->size() / 2)), 0);
  Status st = reader->EnsureSections(kSnapSecMutex);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kDataLoss);
  EXPECT_NE(st.message().find("resized"), std::string::npos) << st.ToString();
  // The failure is sticky even for sections verified afterwards-to-be-asked.
  EXPECT_FALSE(reader->EnsureSections(kSnapSecRank).ok());
}

TEST_F(SnapshotMmapTest, VerifiedSectionsProgressLazily) {
  const std::string path = WriteImage("progression");
  auto reader = SnapshotReader::Open(path, MmapOptions());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->VerifiedSections(), 0u);  // Nothing trusted yet.
  const uint32_t names =
      kSnapSecConceptNames | kSnapSecInstanceNames | kSnapSecNameSort;
  ASSERT_TRUE(reader->EnsureSections(names).ok());
  EXPECT_EQ(reader->VerifiedSections() & names, names);
  EXPECT_EQ(reader->VerifiedSections() & kSnapSecMutex, 0u);
  ASSERT_TRUE(reader->EnsureSections(kSnapSecAll).ok());
  EXPECT_EQ(reader->VerifiedSections(), kSnapSecAll);
  // Re-asking verified sections is a pure bitmask check (no re-hash) and
  // stays OK.
  EXPECT_TRUE(reader->EnsureSections(kSnapSecAll).ok());
}

TEST_F(SnapshotMmapTest, MmapReaderSurvivesMove) {
  const std::string path = WriteImage("moved");
  auto opened = SnapshotReader::Open(path, MmapOptions());
  ASSERT_TRUE(opened.ok());
  SnapshotReader moved = std::move(*opened);
  QueryEngine engine(&moved);
  EXPECT_EQ(engine.Answer((*workload_)[0]).rfind("OK", 0), 0u);
  EXPECT_TRUE(moved.mmap_backed());
}

TEST_F(SnapshotMmapTest, EmptyFileRejected) {
  const std::string path = ::testing::TempDir() + "/mmap_empty.bin";
  ASSERT_TRUE(WriteStringToFile("", path).ok());
  auto reader = SnapshotReader::Open(path, MmapOptions());
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), Status::Code::kDataLoss);
}

}  // namespace
}  // namespace semdrift
