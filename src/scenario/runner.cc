#include "scenario/runner.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <unordered_set>

#include "corpus/serialization.h"
#include "dp/cleaner.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/stream.h"
#include "util/fault_injection.h"
#include "util/string_util.h"
#include "util/supervisor.h"

namespace semdrift {
namespace scenario {

namespace {

/// Save -> load -> re-save must be byte-identical; morphology-heavy worlds
/// ("bakon"/"bakons" as distinct instances) are where the loaders' name
/// resolution would silently conflate entries if it were going to.
void CheckSerializeRoundtrip(const World& world, const Corpus& corpus,
                             const Scenario& s, ScenarioOutcome* outcome) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path dir = fs::temp_directory_path(ec);
  if (ec) {
    outcome->violations.push_back("serialize roundtrip: no temp dir: " +
                                  ec.message());
    outcome->invariant_failure = true;
    return;
  }
  dir /= "semdrift_scenario_" + s.name + "_" + std::to_string(s.seed);
  fs::create_directories(dir, ec);
  const std::string world_a = (dir / "world_a.sdw").string();
  const std::string world_b = (dir / "world_b.sdw").string();
  const std::string corpus_a = (dir / "corpus_a.sdc").string();
  const std::string corpus_b = (dir / "corpus_b.sdc").string();
  auto fail = [&](const std::string& why) {
    outcome->violations.push_back("serialize roundtrip: " + why);
    outcome->invariant_failure = true;
  };
  do {
    if (Status st = SaveWorld(world, world_a); !st.ok()) {
      fail("SaveWorld: " + std::string(st.message()));
      break;
    }
    auto reloaded = LoadWorld(world_a);
    if (!reloaded.ok()) {
      fail("LoadWorld: " + std::string(reloaded.status().message()));
      break;
    }
    if (Status st = SaveWorld(*reloaded, world_b); !st.ok()) {
      fail("re-SaveWorld: " + std::string(st.message()));
      break;
    }
    auto bytes_a = ReadFileToString(world_a);
    auto bytes_b = ReadFileToString(world_b);
    if (!bytes_a.ok() || !bytes_b.ok() || *bytes_a != *bytes_b) {
      fail("world bytes differ after reload");
      break;
    }
    if (Status st = SaveCorpus(world, corpus, corpus_a); !st.ok()) {
      fail("SaveCorpus: " + std::string(st.message()));
      break;
    }
    auto corpus2 = LoadCorpus(world, corpus_a);
    if (!corpus2.ok()) {
      fail("LoadCorpus: " + std::string(corpus2.status().message()));
      break;
    }
    if (Status st = SaveCorpus(world, *corpus2, corpus_b); !st.ok()) {
      fail("re-SaveCorpus: " + std::string(st.message()));
      break;
    }
    auto cbytes_a = ReadFileToString(corpus_a);
    auto cbytes_b = ReadFileToString(corpus_b);
    if (!cbytes_a.ok() || !cbytes_b.ok() || *cbytes_a != *cbytes_b) {
      fail("corpus bytes differ after reload");
      break;
    }
  } while (false);
  fs::remove_all(dir, ec);  // Best effort; a leftover temp dir is harmless.
}

Result<ComputeFaultPlan> PlanFromFaults(const ScenarioFaults& f) {
  ComputeFaultPlan plan;
  plan.seed = f.seed;
  plan.rate = f.rate;
  plan.transient_attempts = f.transient_attempts;
  if (!f.kinds.empty()) {
    plan.kinds.clear();
    for (const std::string& name : f.kinds) {
      ComputeFaultKind kind;
      if (!ParseComputeFaultKind(name, &kind)) {
        return Status::InvalidArgument("unknown fault kind: " + name);
      }
      plan.kinds.push_back(kind);
    }
  }
  if (!f.stages.empty()) {
    plan.stages.clear();
    for (const std::string& name : f.stages) {
      PipelineStage stage;
      if (!ParsePipelineStage(name, &stage)) {
        return Status::InvalidArgument("unknown pipeline stage: " + name);
      }
      plan.stages.push_back(stage);
    }
  }
  return plan;
}

}  // namespace

std::vector<std::string> CheckEnvelope(const ScenarioEnvelope& envelope,
                                       const ScenarioMetrics& m) {
  std::vector<std::string> out;
  auto bound_min = [&out](const std::optional<double>& bound, double value,
                          bool defined, const char* metric) {
    if (!bound.has_value()) return;
    if (!defined) {
      out.push_back(std::string(metric) +
                    " undefined (empty denominator) but a floor of " +
                    FormatDouble(*bound, 3) + " is set");
    } else if (value < *bound) {
      out.push_back(std::string(metric) + " " + FormatDouble(value, 3) +
                    " below floor " + FormatDouble(*bound, 3));
    }
  };
  bound_min(envelope.min_precision_before, m.precision_before,
            m.precision_before_defined, "precision_before");
  bound_min(envelope.min_precision_after, m.precision_after,
            m.precision_after_defined, "precision_after");
  if (envelope.max_precision_after.has_value() && m.precision_after_defined &&
      m.precision_after > *envelope.max_precision_after) {
    out.push_back("precision_after " + FormatDouble(m.precision_after, 3) +
                  " above ceiling " +
                  FormatDouble(*envelope.max_precision_after, 3));
  }
  bound_min(envelope.min_pcorr, m.cleaning.pcorr, m.cleaning.pcorr_defined,
            "pcorr");
  bound_min(envelope.min_rerror, m.cleaning.rerror, m.cleaning.rerror_defined,
            "rerror");
  auto bound_max_count = [&out](const std::optional<int64_t>& bound,
                                int64_t value, const char* metric) {
    if (bound.has_value() && value > *bound) {
      out.push_back(std::string(metric) + " " + std::to_string(value) +
                    " above ceiling " + std::to_string(*bound));
    }
  };
  if (envelope.min_live_pairs_after.has_value() &&
      static_cast<int64_t>(m.live_pairs_after) < *envelope.min_live_pairs_after) {
    out.push_back("live_pairs_after " + std::to_string(m.live_pairs_after) +
                  " below floor " +
                  std::to_string(*envelope.min_live_pairs_after));
  }
  bound_max_count(envelope.max_rounds, m.rounds, "rounds");
  bound_max_count(envelope.max_records_rolled_back,
                  static_cast<int64_t>(m.records_rolled_back),
                  "records_rolled_back");
  bound_max_count(envelope.max_quarantined, static_cast<int64_t>(m.quarantined),
                  "quarantined");
  if (envelope.max_stream_divergence.has_value()) {
    if (!m.stream_divergence_defined) {
      out.push_back(
          "stream_divergence undefined (no stream leg or empty scope) but a "
          "ceiling of " +
          FormatDouble(*envelope.max_stream_divergence, 3) + " is set");
    } else if (m.stream_divergence > *envelope.max_stream_divergence) {
      out.push_back("stream_divergence " +
                    FormatDouble(m.stream_divergence, 3) + " above ceiling " +
                    FormatDouble(*envelope.max_stream_divergence, 3));
    }
  }
  return out;
}

Result<ScenarioOutcome> RunScenario(const Scenario& s) {
  if (Status st = ValidateScenario(s); !st.ok()) return st;
  const auto started = std::chrono::steady_clock::now();
  ScopedSpan span(&GlobalTrace(), "scenario.run");
  span.AddTag("scenario", s.name);
  GlobalMetrics().RegisterCounter("scenario.runs").Add();

  ExperimentConfig config;
  config.world = s.world;
  if (s.paper_named_concepts) config.world.named_concepts = PaperEvaluationConcepts();
  config.corpus = s.corpus;
  config.extractor.max_iterations = s.pipeline.max_iterations;
  config.seed = s.seed;
  config.num_eval_concepts = s.num_eval_concepts;
  auto exp = Experiment::BuildChecked(config);
  if (!exp.ok()) return exp.status();
  const Experiment& e = **exp;

  ScenarioOutcome outcome;
  outcome.metrics.num_sentences = e.corpus().sentences.size();

  if (s.pipeline.serialize_roundtrip) {
    CheckSerializeRoundtrip(e.world(), e.corpus(), s, &outcome);
  }

  // Extraction is unsupervised, like eval/experiment's pipeline: the fault
  // overlay targets the supervised cleaning stages.
  std::vector<IterationStats> stats;
  KnowledgeBase kb = e.Extract(&stats);
  outcome.metrics.iterations = stats.empty() ? 0 : stats.back().iteration;
  if (Status st = kb.Validate(e.world().num_concepts(), e.corpus().sentences.size());
      !st.ok()) {
    outcome.violations.push_back("invariant: post-extraction KB: " +
                                 std::string(st.message()));
    outcome.invariant_failure = true;
  }

  const std::vector<ConceptId> scope = e.EvalConcepts();
  const std::vector<IsAPair> pre_pairs = LivePairsOf(kb, scope);
  outcome.metrics.live_pairs_before = pre_pairs.size();
  {
    PrecisionSample before = LivePairPrecisionSample(e.truth(), kb, scope);
    outcome.metrics.precision_before = before.value;
    outcome.metrics.precision_before_defined = before.defined;
  }

  if (s.pipeline.clean) {
    CleanerOptions copts;
    copts.max_rounds = s.pipeline.max_rounds;
    copts.mutex.mutex_threshold = s.pipeline.mutex_threshold;
    copts.mutex.similar_threshold = s.pipeline.similar_threshold;
    copts.mutex.min_core_instances = s.pipeline.min_core_instances;
    copts.seeds.frequency_threshold_k = s.pipeline.frequency_threshold_k;
    copts.eq21_gate_accidental = s.pipeline.eq21_gate_accidental;
    copts.eq21_min_average_vote = s.pipeline.eq21_min_average_vote;

    auto plan = PlanFromFaults(s.faults);
    if (!plan.ok()) return plan.status();
    SupervisorOptions sup;
    sup.max_retries = s.faults.max_retries;
    sup.quarantine = s.faults.quarantine;
    sup.stage_deadline_ms = s.faults.stage_deadline_ms;
    Supervisor supervisor(sup, *plan);
    SupervisedCleanHooks hooks;
    hooks.supervisor = &supervisor;

    DpCleaner cleaner(&e.corpus().sentences, e.MakeVerifiedSource(),
                      e.world().num_concepts(), copts);
    auto report = cleaner.CleanSupervised(&kb, scope, hooks);
    if (report.ok()) {
      outcome.metrics.rounds = report->rounds;
      outcome.metrics.records_rolled_back = report->records_rolled_back;
    } else {
      // Fail-fast abort (quarantine off and a stage exhausted its retries):
      // scenario-induced behavior, reported as a violation, with the
      // partially-cleaned KB measured as-is below.
      outcome.violations.push_back("cleaning aborted: " +
                                   std::string(report.status().message()));
    }
    const RunHealthReport& health = *supervisor.health();
    outcome.metrics.quarantined = health.Quarantined().size();
    outcome.metrics.drops = health.num_drops();
    if (Status st = kb.Validate(e.world().num_concepts(),
                                e.corpus().sentences.size());
        !st.ok()) {
      outcome.violations.push_back("invariant: post-cleaning KB: " +
                                   std::string(st.message()));
      outcome.invariant_failure = true;
    }
  }

  {
    PrecisionSample after = LivePairPrecisionSample(e.truth(), kb, scope);
    outcome.metrics.precision_after = after.value;
    outcome.metrics.precision_after_defined = after.defined;
  }
  std::unordered_set<IsAPair, IsAPairHash> still_live;
  for (const IsAPair& pair : LivePairsOf(kb, scope)) still_live.insert(pair);
  outcome.metrics.live_pairs_after = still_live.size();
  std::unordered_set<IsAPair, IsAPairHash> removed;
  for (const IsAPair& pair : pre_pairs) {
    if (still_live.count(pair) == 0) removed.insert(pair);
  }
  outcome.metrics.cleaning = EvaluateCleaning(e.truth(), pre_pairs, removed);

  if (s.stream.epochs > 1) {
    // Streaming leg: replay the identical corpus through the incremental
    // pipeline in even epoch slices and measure how far its final taxonomy
    // drifts from the batch KB above. Pipeline knobs mirror the batch leg so
    // every difference is attributable to incremental scoping, not config.
    StreamOptions sopts;
    sopts.extractor.max_iterations = s.pipeline.max_iterations;
    sopts.cleaner.max_rounds = s.pipeline.clean ? s.pipeline.max_rounds : 0;
    sopts.cleaner.mutex.mutex_threshold = s.pipeline.mutex_threshold;
    sopts.cleaner.mutex.similar_threshold = s.pipeline.similar_threshold;
    sopts.cleaner.mutex.min_core_instances = s.pipeline.min_core_instances;
    sopts.cleaner.seeds.frequency_threshold_k = s.pipeline.frequency_threshold_k;
    sopts.cleaner.eq21_gate_accidental = s.pipeline.eq21_gate_accidental;
    sopts.cleaner.eq21_min_average_vote = s.pipeline.eq21_min_average_vote;
    sopts.clean_scope = scope;
    sopts.full_rebuild_every = s.stream.full_rebuild_every;
    sopts.final_full_rebuild = s.stream.final_full_rebuild;
    sopts.rebuild_dirty_frac = s.stream.rebuild_dirty_frac;
    StreamPipeline stream(&e.world(), sopts);
    const std::vector<Sentence>& all = e.corpus().sentences.sentences();
    const size_t total = all.size();
    const int epochs = s.stream.epochs;
    bool aborted = false;
    for (int k = 0; k < epochs; ++k) {
      const size_t begin = total * static_cast<size_t>(k) / epochs;
      const size_t end = total * static_cast<size_t>(k + 1) / epochs;
      std::vector<Sentence> delta(all.begin() + static_cast<long>(begin),
                                  all.begin() + static_cast<long>(end));
      auto epoch_stats = stream.RunEpoch(std::move(delta), k + 1 == epochs);
      if (!epoch_stats.ok()) {
        outcome.violations.push_back(
            "invariant: stream epoch " + std::to_string(k + 1) + ": " +
            std::string(epoch_stats.status().message()));
        outcome.invariant_failure = true;
        aborted = true;
        break;
      }
      ++outcome.metrics.stream_epochs;
      if (epoch_stats->full_rebuild) ++outcome.metrics.stream_full_rebuilds;
    }
    if (!aborted) {
      std::unordered_set<IsAPair, IsAPairHash> stream_live;
      for (const IsAPair& pair : LivePairsOf(stream.kb(), scope)) {
        stream_live.insert(pair);
      }
      size_t intersection = 0;
      for (const IsAPair& pair : stream_live) {
        if (still_live.count(pair) > 0) ++intersection;
      }
      const size_t union_size =
          still_live.size() + stream_live.size() - intersection;
      if (union_size > 0) {
        outcome.metrics.stream_divergence =
            1.0 - static_cast<double>(intersection) /
                      static_cast<double>(union_size);
        outcome.metrics.stream_divergence_defined = true;
      }
    }
  }

  std::vector<std::string> envelope_violations =
      CheckEnvelope(s.envelope, outcome.metrics);
  outcome.violations.insert(outcome.violations.end(),
                            envelope_violations.begin(),
                            envelope_violations.end());

  if (!outcome.violations.empty()) {
    GlobalMetrics().RegisterCounter("scenario.violations")
        .Add(outcome.violations.size());
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                started)
          .count();
  GlobalMetrics()
      .RegisterHistogram("scenario.run_ms", LatencyBucketsMs())
      .Observe(elapsed_ms);
  span.SetOutcome(outcome.ok() ? "pass" : "fail");
  span.AddTag("violations", static_cast<uint64_t>(outcome.violations.size()));
  return outcome;
}

std::string FormatMetricsLine(const ScenarioMetrics& m) {
  std::string out;
  out += "iters=" + std::to_string(m.iterations);
  out += " rounds=" + std::to_string(m.rounds);
  out += " pairs=" + std::to_string(m.live_pairs_before) + "->" +
         std::to_string(m.live_pairs_after);
  out += " precision=" + (m.precision_before_defined
                              ? FormatDouble(m.precision_before, 3)
                              : std::string("n/a")) +
         "->" + (m.precision_after_defined ? FormatDouble(m.precision_after, 3)
                                           : std::string("n/a"));
  out += " pcorr=" +
         (m.cleaning.pcorr_defined ? FormatDouble(m.cleaning.pcorr, 3)
                                   : std::string("n/a"));
  out += " rerror=" +
         (m.cleaning.rerror_defined ? FormatDouble(m.cleaning.rerror, 3)
                                    : std::string("n/a"));
  out += " rolled_back=" + std::to_string(m.records_rolled_back);
  out += " quarantined=" + std::to_string(m.quarantined);
  // Stream fields only for streaming scenarios, so pure-batch hunt and
  // replay log lines stay byte-stable.
  if (m.stream_epochs > 0) {
    out += " stream_epochs=" + std::to_string(m.stream_epochs);
    out += " stream_rebuilds=" + std::to_string(m.stream_full_rebuilds);
    out += " stream_divergence=" +
           (m.stream_divergence_defined ? FormatDouble(m.stream_divergence, 3)
                                        : std::string("n/a"));
  }
  return out;
}

}  // namespace scenario
}  // namespace semdrift
