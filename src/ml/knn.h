#ifndef SEMDRIFT_ML_KNN_H_
#define SEMDRIFT_ML_KNN_H_

#include <cstddef>
#include <vector>

#include "ml/matrix.h"

namespace semdrift {

/// For every row of `x`, the indices of its k nearest rows by Euclidean
/// distance, *including the row itself first* (the paper's N_k(x~_i)
/// "including itself", Sec. 3.3.2). Each result has min(k + 1, n) entries.
/// Brute force O(n^2 d); adequate at the per-concept sample sizes used here.
std::vector<std::vector<size_t>> KNearestNeighbors(const Matrix& x, int k);

}  // namespace semdrift

#endif  // SEMDRIFT_ML_KNN_H_
