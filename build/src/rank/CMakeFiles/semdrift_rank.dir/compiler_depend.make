# Empty compiler generated dependencies file for semdrift_rank.
# This may be replaced when dependencies are built.
