#include <gtest/gtest.h>

#include <cmath>

#include "ml/kpca.h"
#include "util/rng.h"

namespace semdrift {
namespace {

Matrix GaussianBlobs(size_t n_per_blob, const std::vector<std::vector<double>>& centers,
                     double spread, Rng* rng) {
  size_t d = centers[0].size();
  Matrix x(n_per_blob * centers.size(), d);
  size_t row = 0;
  for (const auto& center : centers) {
    for (size_t i = 0; i < n_per_blob; ++i, ++row) {
      for (size_t j = 0; j < d; ++j) {
        x(row, j) = center[j] + spread * rng->NextGaussian();
      }
    }
  }
  return x;
}

TEST(KpcaTest, RejectsDegenerateInput) {
  KernelPca kpca;
  EXPECT_FALSE(kpca.Fit(Matrix(1, 4), KpcaOptions{}));
  EXPECT_FALSE(kpca.Fit(Matrix(5, 0), KpcaOptions{}));
  EXPECT_FALSE(kpca.fitted());
}

TEST(KpcaTest, FitsAndReportsComponents) {
  Rng rng(5);
  Matrix x = GaussianBlobs(20, {{0, 0}, {5, 5}}, 0.3, &rng);
  KernelPca kpca;
  KpcaOptions options;
  ASSERT_TRUE(kpca.Fit(x, options));
  EXPECT_GT(kpca.num_components(), 0u);
  // Eigenvalues descending and positive.
  const auto& values = kpca.eigenvalues();
  for (size_t i = 1; i < values.size(); ++i) EXPECT_LE(values[i], values[i - 1]);
  EXPECT_GT(values.back(), 0.0);
}

TEST(KpcaTest, MaxComponentsRespected) {
  Rng rng(7);
  Matrix x = GaussianBlobs(15, {{0, 0, 0}, {3, 0, 1}, {0, 4, 2}}, 0.5, &rng);
  KernelPca kpca;
  KpcaOptions options;
  options.max_components = 2;
  ASSERT_TRUE(kpca.Fit(x, options));
  EXPECT_EQ(kpca.num_components(), 2u);
}

TEST(KpcaTest, TransformOfTrainingRowsHasUnitVariancePerComponent) {
  // With alpha scaled by 1/sqrt(lambda), the training projections onto each
  // component have variance 1 (coordinates w.r.t. unit eigenvectors in H,
  // scaled by sqrt(lambda)/sqrt(lambda)).
  Rng rng(11);
  Matrix x = GaussianBlobs(30, {{0, 0}, {4, 1}}, 0.6, &rng);
  KernelPca kpca;
  KpcaOptions options;
  options.max_components = 3;
  ASSERT_TRUE(kpca.Fit(x, options));
  Matrix projected = kpca.TransformMatrix(x);
  for (size_t p = 0; p < kpca.num_components(); ++p) {
    double mean = 0.0;
    for (size_t i = 0; i < projected.rows(); ++i) mean += projected(i, p);
    mean /= projected.rows();
    EXPECT_NEAR(mean, 0.0, 1e-6) << "component " << p;
  }
}

TEST(KpcaTest, SeparatesBlobsOnFirstComponent) {
  Rng rng(13);
  Matrix x = GaussianBlobs(25, {{0, 0}, {6, 6}}, 0.4, &rng);
  KernelPca kpca;
  KpcaOptions options;
  options.max_components = 1;
  ASSERT_TRUE(kpca.Fit(x, options));
  Matrix projected = kpca.TransformMatrix(x);
  // All blob-A projections on one side, blob-B on the other.
  double min_a = 1e300;
  double max_a = -1e300;
  double min_b = 1e300;
  double max_b = -1e300;
  for (size_t i = 0; i < 25; ++i) {
    min_a = std::min(min_a, projected(i, 0));
    max_a = std::max(max_a, projected(i, 0));
  }
  for (size_t i = 25; i < 50; ++i) {
    min_b = std::min(min_b, projected(i, 0));
    max_b = std::max(max_b, projected(i, 0));
  }
  EXPECT_TRUE(max_a < min_b || max_b < min_a);
}

TEST(KpcaTest, OutOfSampleNearTrainingPointProjectsNearby) {
  Rng rng(17);
  Matrix x = GaussianBlobs(20, {{0, 0}, {5, 0}}, 0.3, &rng);
  KernelPca kpca;
  KpcaOptions options;
  options.max_components = 2;
  ASSERT_TRUE(kpca.Fit(x, options));
  // A point equal to training row 0 projects exactly like row 0.
  std::vector<double> point{x(0, 0), x(0, 1)};
  std::vector<double> projected = kpca.Transform(point);
  Matrix train_projection = kpca.TransformMatrix(x);
  EXPECT_NEAR(projected[0], train_projection(0, 0), 1e-9);
  EXPECT_NEAR(projected[1], train_projection(0, 1), 1e-9);
}

TEST(KpcaTest, StandardizationNeutralizesDominantScale) {
  // One feature is 1000x the scale of the other; with standardization both
  // matter. Without it, the small feature is invisible to the RBF kernel.
  Rng rng(19);
  Matrix x(40, 2);
  for (size_t i = 0; i < 40; ++i) {
    x(i, 0) = (i < 20 ? 0.0 : 1.0) + 0.01 * rng.NextGaussian();   // Informative.
    x(i, 1) = 1000.0 * rng.NextGaussian();                        // Noise, huge.
  }
  KernelPca with;
  KpcaOptions options;
  options.standardize = true;
  options.max_components = 2;
  ASSERT_TRUE(with.Fit(x, options));
  // The two groups must be separable in the standardized embedding on at
  // least one of the two leading components.
  Matrix projected = with.TransformMatrix(x);
  bool separable = false;
  for (size_t p = 0; p < with.num_components() && !separable; ++p) {
    double max_a = -1e300;
    double min_b = 1e300;
    double min_a = 1e300;
    double max_b = -1e300;
    for (size_t i = 0; i < 20; ++i) {
      max_a = std::max(max_a, projected(i, p));
      min_a = std::min(min_a, projected(i, p));
    }
    for (size_t i = 20; i < 40; ++i) {
      max_b = std::max(max_b, projected(i, p));
      min_b = std::min(min_b, projected(i, p));
    }
    separable = max_a < min_b || max_b < min_a;
  }
  EXPECT_TRUE(separable);
}

TEST(KernelTest, RbfProperties) {
  double x[2] = {1.0, 2.0};
  double y[2] = {1.0, 2.0};
  EXPECT_EQ(KernelValue(KernelType::kRbf, 0.7, x, y, 2), 1.0);
  double z[2] = {2.0, 2.0};
  double k = KernelValue(KernelType::kRbf, 0.7, x, z, 2);
  EXPECT_NEAR(k, std::exp(-0.7), 1e-12);
  EXPECT_EQ(KernelValue(KernelType::kRbf, 0.7, z, x, 2), k);  // Symmetric.
}

TEST(KernelTest, LinearIsDotProduct) {
  double x[3] = {1, 2, 3};
  double y[3] = {4, 5, 6};
  EXPECT_EQ(KernelValue(KernelType::kLinear, 0, x, y, 3), 32.0);
}

TEST(KernelTest, KernelMatrixSymmetricWithUnitDiagonal) {
  Rng rng(23);
  Matrix x(10, 3);
  for (size_t i = 0; i < 10; ++i)
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.NextGaussian();
  Matrix k = KernelMatrix(KernelType::kRbf, 0.4, x);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(k(i, i), 1.0);
    for (size_t j = 0; j < 10; ++j) EXPECT_EQ(k(i, j), k(j, i));
  }
}

}  // namespace
}  // namespace semdrift
