#include "rank/scorers.h"

#include <cmath>
#include <numeric>

namespace semdrift {

namespace {

/// Normalizes `v` to sum to 1 in place (no-op on an all-zero vector).
void NormalizeL1(std::vector<double>* v) {
  double total = std::accumulate(v->begin(), v->end(), 0.0);
  if (total <= 0.0) return;
  for (double& x : *v) x /= total;
}

std::vector<double> FrequencyScores(const ConceptGraph& graph) {
  std::vector<double> scores = graph.node_counts();
  NormalizeL1(&scores);
  return scores;
}

/// Power iteration for a teleporting walk. `restart` must be L1-normalized;
/// `out_edges` are row-stochasticized on the fly; dangling mass teleports.
std::vector<double> TeleportingWalk(
    const std::vector<std::vector<std::pair<uint32_t, double>>>& out_edges,
    const std::vector<double>& restart, const WalkParams& params) {
  size_t n = out_edges.size();
  std::vector<double> out_degree(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (const auto& [to, w] : out_edges[i]) {
      (void)to;
      out_degree[i] += w;
    }
  }
  std::vector<double> p = restart;
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (p[i] == 0.0) continue;
      if (out_degree[i] <= 0.0) {
        dangling += p[i];
        continue;
      }
      double share = p[i] / out_degree[i];
      for (const auto& [to, w] : out_edges[i]) {
        next[to] += share * w;
      }
    }
    double l1 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double value = (1.0 - params.teleport) * (next[i] + dangling * restart[i]) +
                     params.teleport * restart[i];
      l1 += std::abs(value - p[i]);
      next[i] = value;
    }
    p.swap(next);
    if (l1 < params.tolerance) break;
  }
  return p;
}

std::vector<double> RandomWalkScores(const ConceptGraph& graph,
                                     const WalkParams& params) {
  std::vector<double> restart = graph.root_weights();
  double total = std::accumulate(restart.begin(), restart.end(), 0.0);
  if (total <= 0.0) {
    // Degenerate concept with no iteration-1 roots: restart uniformly.
    restart.assign(graph.num_nodes(), graph.num_nodes() ? 1.0 / graph.num_nodes() : 0.0);
  } else {
    for (double& w : restart) w /= total;
  }
  return TeleportingWalk(
      [&graph] {
        std::vector<std::vector<std::pair<uint32_t, double>>> edges;
        edges.reserve(graph.num_nodes());
        for (size_t i = 0; i < graph.num_nodes(); ++i) edges.push_back(graph.OutEdges(i));
        return edges;
      }(),
      restart, params);
}

std::vector<double> PageRankScores(const ConceptGraph& graph,
                                   const WalkParams& params) {
  size_t n = graph.num_nodes();
  // Undirected: symmetrize the edge set (the paper's PageRank baseline uses
  // the same graph with undirected edges and uniform teleportation).
  std::vector<std::vector<std::pair<uint32_t, double>>> edges(n);
  for (size_t i = 0; i < n; ++i) {
    for (const auto& [to, w] : graph.OutEdges(i)) {
      edges[i].emplace_back(to, w);
      edges[to].emplace_back(static_cast<uint32_t>(i), w);
    }
  }
  std::vector<double> restart(n, n ? 1.0 / n : 0.0);
  return TeleportingWalk(edges, restart, params);
}

}  // namespace

std::vector<double> ScoreGraph(const ConceptGraph& graph, RankModel model,
                               const WalkParams& params) {
  switch (model) {
    case RankModel::kFrequency:
      return FrequencyScores(graph);
    case RankModel::kPageRank:
      return PageRankScores(graph, params);
    case RankModel::kRandomWalk:
      return RandomWalkScores(graph, params);
  }
  return {};
}

std::unordered_map<InstanceId, double> ScoreConcept(const KnowledgeBase& kb,
                                                    ConceptId c, RankModel model,
                                                    const WalkParams& params) {
  ConceptGraph graph = ConceptGraph::Build(kb, c);
  std::vector<double> scores = ScoreGraph(graph, model, params);
  std::unordered_map<InstanceId, double> out;
  out.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) out.emplace(graph.node(i), scores[i]);
  return out;
}

double ScoreCache::Get(ConceptId c, InstanceId e) {
  const auto& scores = Concept(c);
  auto it = scores.find(e);
  return it == scores.end() ? 0.0 : it->second;
}

const std::unordered_map<InstanceId, double>& ScoreCache::Concept(ConceptId c) {
  auto it = cache_.find(c.value);
  if (it != cache_.end()) return it->second;
  auto [inserted, _] = cache_.emplace(c.value, ScoreConcept(*kb_, c, model_, params_));
  return inserted->second;
}

}  // namespace semdrift
