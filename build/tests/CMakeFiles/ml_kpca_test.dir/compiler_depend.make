# Empty compiler generated dependencies file for ml_kpca_test.
# This may be replaced when dependencies are built.
