#ifndef SEMDRIFT_ML_KERNEL_H_
#define SEMDRIFT_ML_KERNEL_H_

#include <cstddef>

#include "ml/matrix.h"

namespace semdrift {

/// Kernel choices for the non-linear mapping phi into the Hilbert space H
/// (Sec. 3.3.1).
enum class KernelType {
  kLinear,
  /// k(x, y) = exp(-gamma * ||x - y||^2).
  kRbf,
};

/// Evaluates k(x, y) for two d-dimensional points.
double KernelValue(KernelType type, double gamma, const double* x, const double* y,
                   size_t d);

/// Full kernel matrix over the rows of `x` (rows are samples).
Matrix KernelMatrix(KernelType type, double gamma, const Matrix& x);

/// Kernel vector k(x_i, q) for every row x_i of `x` against query `q`.
void KernelVector(KernelType type, double gamma, const Matrix& x, const double* q,
                  std::vector<double>* out);

}  // namespace semdrift

#endif  // SEMDRIFT_ML_KERNEL_H_
