#include "util/crc32.h"

#include <array>

namespace semdrift {

namespace {

/// Byte-at-a-time lookup table for the reflected IEEE polynomial 0xEDB88320,
/// generated once at startup. Table-driven CRC is ~8x faster than bitwise
/// and plenty for line-oriented file formats.
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

void Crc32::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = Table();
  uint32_t c = state_;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

void Crc32::Update(std::string_view data) { Update(data.data(), data.size()); }

uint32_t Crc32Of(std::string_view data) {
  Crc32 crc;
  crc.Update(data);
  return crc.value();
}

}  // namespace semdrift
