// Reproduces Table 1: statistics of the evaluation instances under the 20
// named concepts — #instances, #correct, #errors, error fraction, and the
// DP-category counts, derived from ground truth exactly as the paper's
// manual labels encode Definitions 1-4.

#include <iostream>

#include "bench_common.h"
#include "eval/metrics.h"
#include "util/string_util.h"
#include "util/table_writer.h"

using namespace semdrift;

int main() {
  auto experiment = bench::BuildBenchExperiment();
  KnowledgeBase kb = experiment->Extract();

  TableWriter table(
      "Table 1: statistics on ground-truth-labeled instances under the 20 "
      "evaluation concepts");
  table.SetHeader({"concept", "#Instances", "#Correct", "#Error", "Error %",
                   "#Intent. DPs", "#Accid. DPs", "#Non-DPs"});

  GroundTruth::ConceptStats overall;
  for (ConceptId c : experiment->EvalConcepts()) {
    auto stats = experiment->truth().StatsOf(kb, c);
    overall.instances += stats.instances;
    overall.correct += stats.correct;
    overall.errors += stats.errors;
    overall.intentional_dps += stats.intentional_dps;
    overall.accidental_dps += stats.accidental_dps;
    overall.non_dps += stats.non_dps;
    double error_rate =
        stats.instances > 0 ? static_cast<double>(stats.errors) / stats.instances : 0;
    table.AddRow({experiment->world().ConceptName(c),
                  std::to_string(stats.instances), std::to_string(stats.correct),
                  std::to_string(stats.errors), FormatDouble(error_rate, 4),
                  std::to_string(stats.intentional_dps),
                  std::to_string(stats.accidental_dps),
                  std::to_string(stats.non_dps)});
  }
  double overall_error =
      overall.instances > 0 ? static_cast<double>(overall.errors) / overall.instances
                            : 0;
  table.AddRow({"Overall", std::to_string(overall.instances),
                std::to_string(overall.correct), std::to_string(overall.errors),
                FormatDouble(overall_error, 4),
                std::to_string(overall.intentional_dps),
                std::to_string(overall.accidental_dps),
                std::to_string(overall.non_dps)});
  table.Print(std::cout);
  (void)table.WriteCsv("bench_table1.csv");
  return 0;
}
