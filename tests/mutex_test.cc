#include <gtest/gtest.h>

#include <cmath>

#include "kb/knowledge_base.h"
#include "mutex/mutex_index.h"

namespace semdrift {
namespace {

ConceptId C(uint32_t v) { return ConceptId(v); }
InstanceId E(uint32_t v) { return InstanceId(v); }
SentenceId S(uint32_t v) { return SentenceId(v); }

/// Three concepts with iteration-1 cores:
///   C0: {e1:3, e2:2, e3:1}
///   C1: {e1:3, e2:2, e4:1}  (shares the head of C0 -> highly similar)
///   C2: {e9:4, e10:1, e11:1} (disjoint -> mutually exclusive with both)
KnowledgeBase BuildCoreKb() {
  KnowledgeBase kb;
  uint32_t sid = 0;
  auto repeat = [&](ConceptId c, InstanceId e, int times) {
    for (int i = 0; i < times; ++i) kb.ApplyExtraction(S(sid++), c, {e}, {}, 1);
  };
  repeat(C(0), E(1), 3);
  repeat(C(0), E(2), 2);
  repeat(C(0), E(3), 1);
  repeat(C(1), E(1), 3);
  repeat(C(1), E(2), 2);
  repeat(C(1), E(4), 1);
  repeat(C(2), E(9), 4);
  repeat(C(2), E(10), 1);
  repeat(C(2), E(11), 1);
  return kb;
}

TEST(MutexIndexTest, SimMatchesManualCosine) {
  KnowledgeBase kb = BuildCoreKb();
  MutexIndex index(kb, 3);
  // Dot = 3*3 + 2*2 = 13; norms: sqrt(9+4+1)=sqrt(14), sqrt(14).
  double expected = 13.0 / 14.0;
  EXPECT_NEAR(index.Sim(C(0), C(1)), expected, 1e-9);
  EXPECT_EQ(index.Sim(C(0), C(2)), 0.0);
  EXPECT_EQ(index.Sim(C(1), C(1)), 1.0);
}

TEST(MutexIndexTest, BandsClassifyRelations) {
  KnowledgeBase kb = BuildCoreKb();
  MutexIndex index(kb, 3);
  EXPECT_TRUE(index.HighlySimilar(C(0), C(1)));
  EXPECT_FALSE(index.IsMutex(C(0), C(1)));
  EXPECT_TRUE(index.IsMutex(C(0), C(2)));
  EXPECT_TRUE(index.IsMutex(C(1), C(2)));
  EXPECT_FALSE(index.IsMutex(C(0), C(0)));
}

TEST(MutexIndexTest, SimilarConceptsListed) {
  KnowledgeBase kb = BuildCoreKb();
  MutexIndex index(kb, 3);
  const auto& similar = index.SimilarConcepts(C(0));
  ASSERT_EQ(similar.size(), 1u);
  EXPECT_EQ(similar[0], C(1));
  EXPECT_TRUE(index.SimilarConcepts(C(2)).empty());
}

TEST(MutexIndexTest, MutexPropagatesThroughSimilarClosure) {
  KnowledgeBase kb = BuildCoreKb();
  // Add a concept C3 overlapping C1's tail only: moderately similar to C1,
  // disjoint from C0.
  uint32_t sid = 100;
  for (int i = 0; i < 2; ++i) kb.ApplyExtraction(S(sid++), C(3), {E(4)}, {}, 1);
  kb.ApplyExtraction(S(sid++), C(3), {E(11)}, {}, 1);
  kb.ApplyExtraction(S(sid++), C(3), {E(12)}, {}, 1);
  MutexParams params;
  MutexIndex index(kb, 4, params);
  // Raw Sim(C0, C3) is zero, but C0 is highly similar to C1 which overlaps
  // C3 — effective similarity blocks the mutex call when above threshold.
  double c1_c3 = index.Sim(C(1), C(3));
  ASSERT_GT(c1_c3, 0.0);
  if (c1_c3 >= params.mutex_threshold) {
    EXPECT_FALSE(index.IsMutex(C(0), C(3)));
  } else {
    EXPECT_TRUE(index.IsMutex(C(0), C(3)));
  }
}

TEST(MutexIndexTest, SmallCoreConceptsAreUnusable) {
  KnowledgeBase kb;
  kb.ApplyExtraction(S(0), C(0), {E(1)}, {}, 1);  // Core size 1 < min 3.
  for (int i = 0; i < 5; ++i) {
    kb.ApplyExtraction(S(10 + i), C(1), {E(10 + i)}, {}, 1);
  }
  MutexIndex index(kb, 2);
  EXPECT_FALSE(index.Usable(C(0)));
  EXPECT_TRUE(index.Usable(C(1)));
  EXPECT_FALSE(index.IsMutex(C(0), C(1)));  // Unusable never mutex.
}

TEST(MutexIndexTest, F2CountsMutexHolders) {
  KnowledgeBase kb = BuildCoreKb();
  // e1 lives in C0 and C1 (highly similar -> not mutex): f2 should be 0.
  MutexIndex index(kb, 3);
  EXPECT_EQ(index.F2Count(C(0), E(1)), 0);
  // Put e9 (C2 core) into C0 via a late extraction: C0 & C2 are mutex, so
  // f2(C0, e9) counts C2 and vice versa.
  kb.ApplyExtraction(S(50), C(0), {E(9)}, {E(1)}, 2);
  MutexIndex fresh(kb, 3);
  EXPECT_EQ(fresh.F2Count(C(0), E(9)), 1);
  EXPECT_EQ(fresh.F2Count(C(2), E(9)), 1);
}

TEST(MutexIndexTest, DeadPairsNotCounted) {
  KnowledgeBase kb = BuildCoreKb();
  uint32_t rec = kb.ApplyExtraction(S(60), C(0), {E(9)}, {E(1)}, 2);
  kb.RollbackRecord(rec, CascadePolicy::kAllTriggersDead);
  MutexIndex index(kb, 3);
  // (C0, e9) is dead, so from C2's side e9 no longer has a mutex home.
  EXPECT_EQ(index.F2Count(C(2), E(9)), 0);
  // From C0's side e9 still lives under C2 (its legitimate home); f2 counts
  // the instance's *other* live homes, not this pair's own liveness.
  EXPECT_EQ(index.F2Count(C(0), E(9)), 1);
}

TEST(MutexIndexTest, NonZeroSimilaritiesSorted) {
  KnowledgeBase kb = BuildCoreKb();
  MutexIndex index(kb, 3);
  auto sims = index.NonZeroSimilarities();
  ASSERT_EQ(sims.size(), 1u);  // Only the C0-C1 pair overlaps.
  EXPECT_NEAR(sims[0], 13.0 / 14.0, 1e-9);
}

TEST(MutexIndexTest, ThresholdsConfigurable) {
  KnowledgeBase kb = BuildCoreKb();
  MutexParams strict;
  strict.similar_threshold = 0.99;  // C0-C1 (0.93) no longer "highly similar".
  MutexIndex index(kb, 3, strict);
  EXPECT_FALSE(index.HighlySimilar(C(0), C(1)));
  // But sim 0.93 is far above the mutex threshold, so still not mutex.
  EXPECT_FALSE(index.IsMutex(C(0), C(1)));
}

}  // namespace
}  // namespace semdrift
