#ifndef SEMDRIFT_TEXT_SENTENCE_H_
#define SEMDRIFT_TEXT_SENTENCE_H_

#include <string>
#include <vector>

#include "text/ids.h"

namespace semdrift {

/// A Hearst-pattern sentence after candidate analysis: s := {Cs, Es}
/// (Sec. 2.1 of the paper). `candidate_concepts` are the noun phrases that
/// "such as" could attach to; `candidate_instances` are the listed terms.
/// A sentence is *unambiguous* when exactly one candidate concept exists;
/// only those sentences are consumed by extraction iteration 1.
struct Sentence {
  SentenceId id;
  /// Candidate concepts Cs, in surface order (last one is adjacent to
  /// "such as" — the default syntactic attachment).
  std::vector<ConceptId> candidate_concepts;
  /// Candidate instances Es, in list order.
  std::vector<InstanceId> candidate_instances;
  /// Optional rendered surface text (kept for demos and parser round-trips).
  std::string text;

  bool unambiguous() const { return candidate_concepts.size() == 1; }
};

/// Append-only store of distinct sentences, addressed by SentenceId.
class SentenceStore {
 public:
  SentenceStore() = default;

  SentenceStore(const SentenceStore&) = delete;
  SentenceStore& operator=(const SentenceStore&) = delete;
  SentenceStore(SentenceStore&&) = default;
  SentenceStore& operator=(SentenceStore&&) = default;

  /// Appends a sentence and assigns its id. Returns the assigned id.
  SentenceId Add(Sentence sentence);

  const Sentence& Get(SentenceId id) const { return sentences_[id.value]; }

  size_t size() const { return sentences_.size(); }
  const std::vector<Sentence>& sentences() const { return sentences_; }

 private:
  std::vector<Sentence> sentences_;
};

}  // namespace semdrift

#endif  // SEMDRIFT_TEXT_SENTENCE_H_
