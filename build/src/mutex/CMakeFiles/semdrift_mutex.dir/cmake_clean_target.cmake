file(REMOVE_RECURSE
  "libsemdrift_mutex.a"
)
