file(REMOVE_RECURSE
  "CMakeFiles/semdrift_corpus.dir/generator.cc.o"
  "CMakeFiles/semdrift_corpus.dir/generator.cc.o.d"
  "CMakeFiles/semdrift_corpus.dir/renderer.cc.o"
  "CMakeFiles/semdrift_corpus.dir/renderer.cc.o.d"
  "CMakeFiles/semdrift_corpus.dir/serialization.cc.o"
  "CMakeFiles/semdrift_corpus.dir/serialization.cc.o.d"
  "CMakeFiles/semdrift_corpus.dir/world.cc.o"
  "CMakeFiles/semdrift_corpus.dir/world.cc.o.d"
  "libsemdrift_corpus.a"
  "libsemdrift_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
