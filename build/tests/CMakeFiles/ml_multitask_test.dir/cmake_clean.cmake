file(REMOVE_RECURSE
  "CMakeFiles/ml_multitask_test.dir/ml_multitask_test.cc.o"
  "CMakeFiles/ml_multitask_test.dir/ml_multitask_test.cc.o.d"
  "ml_multitask_test"
  "ml_multitask_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_multitask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
