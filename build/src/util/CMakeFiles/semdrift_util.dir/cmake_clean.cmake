file(REMOVE_RECURSE
  "CMakeFiles/semdrift_util.dir/logging.cc.o"
  "CMakeFiles/semdrift_util.dir/logging.cc.o.d"
  "CMakeFiles/semdrift_util.dir/rng.cc.o"
  "CMakeFiles/semdrift_util.dir/rng.cc.o.d"
  "CMakeFiles/semdrift_util.dir/status.cc.o"
  "CMakeFiles/semdrift_util.dir/status.cc.o.d"
  "CMakeFiles/semdrift_util.dir/string_util.cc.o"
  "CMakeFiles/semdrift_util.dir/string_util.cc.o.d"
  "CMakeFiles/semdrift_util.dir/table_writer.cc.o"
  "CMakeFiles/semdrift_util.dir/table_writer.cc.o.d"
  "libsemdrift_util.a"
  "libsemdrift_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semdrift_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
