// semdrift — command-line driver for the library.
//
//   semdrift generate --scale 0.25 --seed 2014 --world w.tsv --corpus c.tsv
//       Generate a ground-truth world + Hearst corpus and save both.
//   semdrift run --world w.tsv --corpus c.tsv --out taxonomy.tsv
//                [--snapshot-out s.bin]
//                [--snapshot-delta-out d.bin --snapshot-delta-base s.bin
//                 [--snapshot-delta-base-gen N]] [--no-clean]
//                [--lenient] [--checkpoint-dir D [--resume] [--validate]
//                [--keep-checkpoints N]] [--supervise] [--health-report]
//                [--stage-deadline-ms N] [--max-retries N] [--quarantine on|off]
//                [--fault-rate R --fault-seed N --fault-kinds K --fault-stages S]
//                [--trace-out T.jsonl] [--trace-chrome T.json] [--metrics-out M.json]
//       Load world+corpus, run iterative extraction (and DP cleaning unless
//       --no-clean), report quality against ground truth, export the
//       taxonomy. With --checkpoint-dir the run snapshots after every
//       iteration and --resume continues from the latest valid snapshot.
//       --supervise (implied by --health-report or --fault-rate > 0) runs
//       the cleaning stages under the supervision layer: per-concept
//       deadlines, bounded retries and quarantine, with --health-report
//       printing the per-concept outcome table. The --fault-* flags enable
//       seeded compute-fault injection (kinds: throw,stall,nan; stages:
//       warm,collect,train,score) for robustness drills. --trace-out /
//       --trace-chrome enable span recording and export the trace as JSONL /
//       Chrome trace_event JSON (loadable in chrome://tracing);
//       --metrics-out dumps the process metrics registry. Tracing never
//       changes any output byte: spans record only from serial driver
//       contexts, so checkpoints, taxonomy and snapshot are bit-identical
//       with tracing on or off.
//   semdrift stream --world w.tsv --corpus c.tsv --epochs N
//                   [--full-rebuild-every K] [--no-final-rebuild]
//                   [--rebuild-dirty-frac F] [--publish-dir D]
//                   [--epoch-snapshots D2] [--max-iterations N] [--max-rounds N]
//                   [--epoch-sleep-ms N] [--metrics-out M.json]
//       Streaming incremental extraction: replay the corpus as N timestamped
//       epochs. Each epoch ingests its sentence delta, continues iterative
//       extraction, re-runs DP detection/cleaning scoped to the dirty concept
//       set (concepts the new records touched, closed over shared live
//       instances), revalidates through the replay path, and — with
//       --publish-dir — publishes the result for a live `serve --publish-dir`
//       to hot-swap: full snap-<gen>.bin on rebuild epochs, CRC-bound
//       delta-<gen>.bin otherwise. Epoch k is a full rebuild when
//       --full-rebuild-every divides k, when the dirty set exceeds
//       --rebuild-dirty-frac of the world, and always on the final epoch
//       unless --no-final-rebuild: a rebuild re-runs the whole batch pipeline
//       over the cumulative corpus, so the stream's final state is
//       byte-identical to a one-shot `run` over the same files.
//       --epoch-snapshots writes every epoch's full image as epoch-<k>.bin
//       (the per-epoch reference the soak test diffs live answers against);
//       --epoch-sleep-ms paces publishes so a watching server observes every
//       generation.
//   semdrift serve --snapshot s.bin | --publish-dir D [--poll-ms N]
//                  [--mmap] [--cache N] [--cache-shards N]
//                  [--max-batch N] [--max-wait-ms N] [--deadline-ms N]
//                  [--deadline-budget-ms N] [--stats-interval-ms N]
//                  [--listen tcp:host:port|unix:/path [--shards N]]
//       Load a serving snapshot and answer line-protocol queries on
//       stdin/stdout (instances-of, concepts-of, is-a, drift-score, mutex,
//       stats, metrics; `quit` exits). Requests are coalesced into batches
//       and executed on the thread pool; responses come back in request
//       order. With --publish-dir the server instead watches a publish
//       directory (snap-<gen>.bin full images, delta-<gen>.bin deltas) and
//       hot-swaps generations atomically: in-flight queries finish on the
//       old generation, corrupt publishes are quarantined (renamed
//       *.quarantined) and serving rolls back to the last good generation.
//       --deadline-budget-ms > 0 enables admission control: when the p99
//       queue wait crosses the budget, low-priority requests are refused
//       with an OVERLOADED response instead of queueing to death.
//       --stats-interval-ms > 0 prints a serving-stats snapshot to stderr
//       every N milliseconds. --mmap opens the snapshot zero-copy with
//       per-section CRC validation deferred to first touch (fast cold
//       start; corrupt sections fail only the verbs that touch them).
//       --listen serves the same protocol on a TCP or unix socket instead
//       of stdin/stdout (epoll front-end, pipelining with responses in
//       request order); --shards N partitions the concept space over N
//       workers by consistent hash, byte-identical answers at any shard
//       count, with `stats` merged across shards. SIGINT/SIGTERM shut the
//       socket server down cleanly.
//   semdrift query (--snapshot s.bin [--mmap] | --connect EP) <verb> <args...>
//       One-shot: answer a single query and exit. --snapshot opens the
//       file directly; --connect round-trips the query to a serve --listen
//       endpoint (same address grammar). Exit codes form the
//       scripting contract shared with serve's line protocol: 0 = OK,
//       1 = ERR, 2 = usage, 3 = NOT_FOUND (miss), 4 = OVERLOADED (shed by
//       admission control). Each shell
//       argument becomes one protocol field, so multi-word names need
//       quoting, not tabs.
//   semdrift snapshot-verify <base> [delta...]
//       Check snapshot framing (magic, version, CRCs) and deep structure
//       (CSR monotonicity, id bounds, rank permutations, string-table
//       bounds). With delta files, verifies the whole publish chain: each
//       delta must load strictly, bind to the previous image's CRC32, and
//       materialize an image that passes the same deep validation. Exits
//       non-zero on any corruption.
//   semdrift fuzz-load [--count 200] [--seed 2014] [--scale 0.05] [--dir D]
//       Fault-injection sweep: corrupt world/corpus/checkpoint/snapshot/
//       delta files in seeded, targeted ways and prove every loader
//       survives — each corruption must yield a clean Status (strict) or a
//       fully-accounted LoadReport (lenient), never a crash or silent
//       half-load. Delta corruptions that slip past the loader must still
//       materialize into a snapshot that passes deep validation.
//
// Every subcommand is deterministic in --seed. Unknown flags, missing flag
// values and non-numeric values for numeric flags exit non-zero.

#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <future>
#include <iostream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "corpus/serialization.h"
#include "dp/cleaner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "extract/checkpoint.h"
#include "extract/extractor.h"
#include "extract/hearst_parser.h"
#include "net/net_client.h"
#include "net/router.h"
#include "net/server.h"
#include "scenario/grammar.h"
#include "scenario/hunt.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "serve/batcher.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "serve/snapshot_delta.h"
#include "serve/snapshot_manager.h"
#include "stream/stream.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

using namespace semdrift;

namespace {

/// Command-line flag parser. Each subcommand declares which flags take a
/// value and which are boolean, so `--no-clean` can never shift a later
/// `--name value` pair out of alignment, and an unknown or malformed flag
/// is a hard error instead of a note on stderr.
class Flags {
 public:
  Flags(int argc, char** argv, int first, std::set<std::string> valued,
        std::set<std::string> boolean) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (!StartsWith(arg, "--")) {
        Fail("unexpected argument: " + arg);
        return;
      }
      std::string name = arg.substr(2);
      if (boolean.count(name) > 0) {
        present_.insert(name);
      } else if (valued.count(name) > 0) {
        if (i + 1 >= argc) {
          Fail("missing value for --" + name);
          return;
        }
        values_[name] = argv[++i];
      } else {
        Fail("unknown flag --" + name);
        return;
      }
    }
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  /// Numeric accessors refuse garbage: `--scale abc` is a fatal error, not
  /// a silent 0.0.
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    double value = 0.0;
    if (!ParseDouble(it->second, &value)) DieBadValue(name, it->second);
    return value;
  }
  uint64_t GetUint(const std::string& name, uint64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    uint64_t value = 0;
    if (!ParseUint64(it->second, &value)) DieBadValue(name, it->second);
    return value;
  }
  bool Has(const std::string& name) const { return present_.count(name) > 0; }

 private:
  void Fail(const std::string& why) { error_ = why; }
  [[noreturn]] static void DieBadValue(const std::string& name,
                                       const std::string& value) {
    std::fprintf(stderr, "invalid value for --%s: '%s'\n", name.c_str(),
                 value.c_str());
    std::exit(2);
  }

  std::unordered_map<std::string, std::string> values_;
  std::set<std::string> present_;
  std::string error_;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  semdrift generate --scale S --seed N --world W --corpus C\n"
      "  semdrift run --world W --corpus C --out T.tsv [--snapshot-out S]\n"
      "               [--snapshot-delta-out D --snapshot-delta-base S\n"
      "               [--snapshot-delta-base-gen N]]\n"
      "               [--no-clean] [--lenient]\n"
      "               [--checkpoint-dir D [--resume] [--validate]\n"
      "               [--keep-checkpoints N]] [--supervise] [--health-report]\n"
      "               [--stage-deadline-ms N] [--max-retries N]\n"
      "               [--quarantine on|off] [--fault-rate R] [--fault-seed N]\n"
      "               [--fault-kinds throw,stall,nan]\n"
      "               [--fault-stages warm,collect,train,score]\n"
      "               [--trace-out T.jsonl] [--trace-chrome T.json]\n"
      "               [--metrics-out M.json]\n"
      "  semdrift stream --world W --corpus C --epochs N\n"
      "               [--full-rebuild-every K] [--no-final-rebuild]\n"
      "               [--rebuild-dirty-frac F] [--publish-dir D]\n"
      "               [--epoch-snapshots D2] [--max-iterations N]\n"
      "               [--max-rounds N] [--epoch-sleep-ms N]\n"
      "               [--metrics-out M.json]\n"
      "  semdrift parse --world W   (sentences on stdin)\n"
      "  semdrift serve --snapshot S | --publish-dir D [--poll-ms N]\n"
      "               [--cache N] [--cache-shards N]\n"
      "               [--max-batch N] [--max-wait-ms N] [--deadline-ms N]\n"
      "               [--deadline-budget-ms N] [--stats-interval-ms N]\n"
      "  semdrift query --snapshot S <verb> <args...>\n"
      "               (exit: 0 OK, 1 ERR, 2 usage, 3 NOT_FOUND, 4 OVERLOADED)\n"
      "  semdrift snapshot-verify <base> [delta...]\n"
      "  semdrift fuzz-load [--count N] [--seed N] [--scale S] [--dir D]\n"
      "  semdrift scenario-run <file.toml>... [--verbose] [--pin-envelope]\n"
      "               (exit: 0 all pass, 1 violations, 2 usage)\n"
      "  semdrift scenario-hunt [--seed N] [--samples N] [--archetype A]\n"
      "               [--floor F] [--margin M] [--no-shrink]\n"
      "               [--max-shrink-evals N] [--out-dir D]\n"
      "  semdrift scenario-sample --seed N [--archetype A] [--out F]\n"
      "\n"
      "Every subcommand accepts --threads N (default: SEMDRIFT_THREADS env\n"
      "var, then hardware concurrency). Results are identical at any thread\n"
      "count.\n");
  return 2;
}

/// Applies the global --threads control (0 = auto: SEMDRIFT_THREADS env var,
/// then hardware concurrency). Parallel stages are bit-deterministic, so
/// this only changes wall-clock time, never output.
void ApplyThreadsFlag(const Flags& flags) {
  SetGlobalThreadCount(static_cast<int>(flags.GetUint("threads", 0)));
}

/// Prints lenient-load damage so skipped lines are visible, not silent.
void ReportSkips(const char* what, const LoadReport& report) {
  if (report.skipped.empty() && !report.truncated &&
      (!report.checksum_present || report.checksum_ok)) {
    return;
  }
  std::fprintf(stderr, "%s: loaded %zu/%zu lines", what, report.lines_loaded,
               report.lines_seen);
  if (report.truncated) std::fprintf(stderr, ", truncated");
  if (report.checksum_present && !report.checksum_ok) {
    std::fprintf(stderr, ", checksum mismatch");
  }
  std::fprintf(stderr, "\n");
  for (const auto& skip : report.skipped) {
    std::fprintf(stderr, "  line %zu: %s\n", skip.line_number, skip.reason.c_str());
  }
}

int Generate(const Flags& flags) {
  ApplyThreadsFlag(flags);
  ExperimentConfig config = PaperScaleConfig(flags.GetDouble("scale", 0.25));
  config.seed = flags.GetUint("seed", 2014);
  config.corpus.render_text = true;
  auto experiment = Experiment::Build(config);
  std::string world_path = flags.Get("world", "world.tsv");
  std::string corpus_path = flags.Get("corpus", "corpus.tsv");
  Status s = SaveWorld(experiment->world(), world_path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  s = SaveCorpus(experiment->world(), experiment->corpus(), corpus_path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("world: %zu concepts, %zu instances -> %s\n",
              experiment->world().num_concepts(), experiment->world().num_instances(),
              world_path.c_str());
  std::printf("corpus: %zu sentences -> %s\n", experiment->corpus().sentences.size(),
              corpus_path.c_str());
  return 0;
}

/// Exports the observability artifacts a successful run asked for
/// (--trace-out / --trace-chrome / --metrics-out), naming each on stdout.
int WriteObsArtifacts(const Flags& flags) {
  std::string trace_out = flags.Get("trace-out", "");
  if (!trace_out.empty()) {
    std::string error;
    if (!GlobalTrace().WriteJsonl(trace_out, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("trace -> %s\n", trace_out.c_str());
  }
  std::string trace_chrome = flags.Get("trace-chrome", "");
  if (!trace_chrome.empty()) {
    std::string error;
    if (!GlobalTrace().WriteChromeTrace(trace_chrome, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("chrome trace -> %s\n", trace_chrome.c_str());
  }
  std::string metrics_out = flags.Get("metrics-out", "");
  if (!metrics_out.empty()) {
    Status s = WriteStringToFile(GlobalMetrics().ToJson() + "\n", metrics_out);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }
  return 0;
}

/// Successful runs name every artifact they wrote (taxonomy, checkpoints,
/// snapshot) on stdout so serve/query commands can be chained in scripts.
/// Writing the serving snapshot is part of the run: a KB that fails
/// validation fails the run rather than becoming a corrupt snapshot.
int FinishRun(const Flags& flags, const KnowledgeBase& kb, const World& world,
              size_t num_sentences, const RunHealthReport* health,
              const std::string& taxonomy_path, const std::string& checkpoint_dir) {
  std::printf("taxonomy -> %s\n", taxonomy_path.c_str());
  if (!checkpoint_dir.empty()) {
    std::printf("checkpoints -> %s\n", checkpoint_dir.c_str());
  }
  std::string snapshot_path = flags.Get("snapshot-out", "");
  if (!snapshot_path.empty()) {
    Status s = WriteServingSnapshot(kb, world, num_sentences, health, snapshot_path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("snapshot -> %s\n", snapshot_path.c_str());
  }
  std::string delta_path = flags.Get("snapshot-delta-out", "");
  if (!delta_path.empty()) {
    std::string base_path = flags.Get("snapshot-delta-base", "");
    if (base_path.empty()) {
      std::fprintf(stderr,
                   "--snapshot-delta-out requires --snapshot-delta-base\n");
      return 2;
    }
    uint64_t base_gen = flags.GetUint("snapshot-delta-base-gen", 1);
    Status s = WriteServingSnapshotDelta(kb, world, num_sentences, health,
                                         base_path, base_gen, delta_path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("snapshot delta -> %s (generation %llu)\n", delta_path.c_str(),
                static_cast<unsigned long long>(base_gen + 1));
  }
  return WriteObsArtifacts(flags);
}

int Run(const Flags& flags) {
  ApplyThreadsFlag(flags);
  if (!flags.Get("trace-out", "").empty() ||
      !flags.Get("trace-chrome", "").empty()) {
    GlobalTrace().Enable(true);
  }
  LoadOptions load_options;
  if (flags.Has("lenient")) load_options.mode = LoadOptions::Mode::kLenient;
  LoadReport world_report;
  auto world = LoadWorld(flags.Get("world", "world.tsv"), load_options, &world_report);
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }
  ReportSkips("world", world_report);
  LoadReport corpus_report;
  auto corpus = LoadCorpus(*world, flags.Get("corpus", "corpus.tsv"), load_options,
                           &corpus_report);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  ReportSkips("corpus", corpus_report);

  std::string checkpoint_dir = flags.Get("checkpoint-dir", "");
  if (checkpoint_dir.empty() && flags.Has("resume")) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }

  GroundTruth truth(&*world);
  std::vector<ConceptId> scope;
  for (size_t ci = 0; ci < world->num_concepts(); ++ci) {
    scope.push_back(ConceptId(static_cast<uint32_t>(ci)));
  }

  double fault_rate = flags.GetDouble("fault-rate", 0.0);
  bool supervise =
      flags.Has("supervise") || flags.Has("health-report") || fault_rate > 0.0;
  if (supervise) {
    SupervisedRunConfig config;
    config.supervisor.stage_deadline_ms =
        static_cast<int>(flags.GetUint("stage-deadline-ms", 30000));
    config.supervisor.max_retries =
        static_cast<int>(flags.GetUint("max-retries", 2));
    std::string quarantine = flags.Get("quarantine", "on");
    if (quarantine == "on") {
      config.supervisor.quarantine = true;
    } else if (quarantine == "off") {
      config.supervisor.quarantine = false;
    } else {
      std::fprintf(stderr, "invalid value for --quarantine: '%s' (expected on|off)\n",
                   quarantine.c_str());
      return 2;
    }
    config.faults.rate = fault_rate;
    config.faults.seed = flags.GetUint("fault-seed", 2014);
    std::string kinds = flags.Get("fault-kinds", "");
    if (!kinds.empty()) {
      config.faults.kinds.clear();
      for (const std::string& name : Split(kinds, ',')) {
        ComputeFaultKind kind;
        if (!ParseComputeFaultKind(name, &kind)) {
          std::fprintf(stderr,
                       "invalid value for --fault-kinds: '%s' (expected "
                       "throw|stall|nan)\n",
                       name.c_str());
          return 2;
        }
        config.faults.kinds.push_back(kind);
      }
    }
    std::string stages = flags.Get("fault-stages", "");
    if (!stages.empty()) {
      config.faults.stages.clear();
      for (const std::string& name : Split(stages, ',')) {
        PipelineStage stage;
        if (!ParsePipelineStage(name, &stage)) {
          std::fprintf(stderr,
                       "invalid value for --fault-stages: '%s' (expected "
                       "warm|collect|train|score)\n",
                       name.c_str());
          return 2;
        }
        config.faults.stages.push_back(stage);
      }
    }
    config.checkpoint.dir = checkpoint_dir;
    config.checkpoint.resume = flags.Has("resume");
    config.checkpoint.validate_each_iteration = flags.Has("validate");
    config.checkpoint.keep_last =
        static_cast<int>(flags.GetUint("keep-checkpoints", 0));
    config.clean = !flags.Has("no-clean");

    const World* world_ptr = &*world;
    IterativeExtractor extractor(&corpus->sentences, ExtractorOptions{});
    auto run = RunSupervisedPipeline(
        &extractor, &corpus->sentences,
        [world_ptr](const IsAPair& pair) {
          return world_ptr->IsVerified(pair.concept_id, pair.instance);
        },
        world->num_concepts(), corpus->sentences.size(), scope, config);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    std::printf("supervised run: %zu iterations, %zu live pairs (precision %.3f)\n",
                run->stats.size(), run->kb.num_live_pairs(),
                LivePairPrecision(truth, run->kb, scope));
    if (config.clean) {
      std::printf("cleaned: %d rounds, %zu DPs, %zu -> %zu pairs\n",
                  run->cleaning.rounds,
                  run->cleaning.intentional_dps.size() +
                      run->cleaning.accidental_dps.size(),
                  run->cleaning.live_pairs_before, run->cleaning.live_pairs_after);
    }
    const RunHealthReport& health = run->health;
    std::printf("health: %zu quarantined, %zu degraded, %zu retried, %zu dropped "
                "instances%s\n",
                health.CountWithOutcome(ConceptOutcome::kQuarantined),
                health.CountWithOutcome(ConceptOutcome::kDegraded),
                health.CountWithOutcome(ConceptOutcome::kRetried),
                health.num_drops(),
                health.detector_fallback() ? ", detector fell back" : "");
    if (flags.Has("health-report")) {
      std::printf("%s", health.ToTable().c_str());
    }
    std::string out = flags.Get("out", "taxonomy.tsv");
    Status s = ExportTaxonomyTsv(run->kb, *world, out);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    return FinishRun(flags, run->kb, *world, corpus->sentences.size(),
                     &run->health, out, checkpoint_dir);
  }

  KnowledgeBase kb;
  IterativeExtractor extractor(&corpus->sentences, ExtractorOptions{});
  std::vector<IterationStats> iterations;
  if (!checkpoint_dir.empty()) {
    CheckpointConfig checkpoint;
    checkpoint.dir = checkpoint_dir;
    checkpoint.resume = flags.Has("resume");
    checkpoint.validate_each_iteration = flags.Has("validate");
    checkpoint.keep_last = static_cast<int>(flags.GetUint("keep-checkpoints", 0));
    checkpoint.num_concepts = world->num_concepts();
    checkpoint.num_sentences = corpus->sentences.size();
    auto run = RunWithCheckpoints(&extractor, &kb, checkpoint);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    iterations = std::move(*run);
  } else {
    iterations = extractor.Run(&kb);
  }
  std::printf("extracted %zu pairs in %zu iterations (precision %.3f)\n",
              kb.num_live_pairs(), iterations.size(),
              LivePairPrecision(truth, kb, scope));

  if (!flags.Has("no-clean")) {
    CleanerOptions options;
    const World* world_ptr = &*world;
    DpCleaner cleaner(
        &corpus->sentences,
        [world_ptr](const IsAPair& pair) {
          return world_ptr->IsVerified(pair.concept_id, pair.instance);
        },
        world->num_concepts(), options);
    CleaningReport report = cleaner.Clean(&kb, scope);
    std::printf("cleaned: %d rounds, %zu DPs, %zu -> %zu pairs (precision %.3f)\n",
                report.rounds,
                report.intentional_dps.size() + report.accidental_dps.size(),
                report.live_pairs_before, report.live_pairs_after,
                LivePairPrecision(truth, kb, scope));
  }

  std::string out = flags.Get("out", "taxonomy.tsv");
  Status s = ExportTaxonomyTsv(kb, *world, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return FinishRun(flags, kb, *world, corpus->sentences.size(),
                   /*health=*/nullptr, out, checkpoint_dir);
}

/// Streaming incremental extraction (src/stream/): replays the corpus as
/// `--epochs` timestamped deltas through a StreamPipeline, publishing every
/// epoch into `--publish-dir` for a live `serve --publish-dir` to hot-swap.
int StreamCmd(const Flags& flags) {
  ApplyThreadsFlag(flags);
  LoadOptions load_options;
  if (flags.Has("lenient")) load_options.mode = LoadOptions::Mode::kLenient;
  LoadReport world_report;
  auto world = LoadWorld(flags.Get("world", "world.tsv"), load_options, &world_report);
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }
  ReportSkips("world", world_report);
  LoadReport corpus_report;
  auto corpus = LoadCorpus(*world, flags.Get("corpus", "corpus.tsv"), load_options,
                           &corpus_report);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  ReportSkips("corpus", corpus_report);

  int epochs = static_cast<int>(flags.GetUint("epochs", 4));
  if (epochs < 1) {
    std::fprintf(stderr, "--epochs must be >= 1\n");
    return 2;
  }
  StreamOptions options;
  options.extractor.max_iterations =
      static_cast<int>(flags.GetUint("max-iterations", 12));
  options.cleaner.max_rounds = static_cast<int>(flags.GetUint("max-rounds", 6));
  options.full_rebuild_every =
      static_cast<int>(flags.GetUint("full-rebuild-every", 0));
  options.final_full_rebuild = !flags.Has("no-final-rebuild");
  options.rebuild_dirty_frac = flags.GetDouble("rebuild-dirty-frac", 1.0);
  options.publish_dir = flags.Get("publish-dir", "");
  options.epoch_snapshot_dir = flags.Get("epoch-snapshots", "");
  int sleep_ms = static_cast<int>(flags.GetUint("epoch-sleep-ms", 0));

  for (const std::string& dir : {options.publish_dir, options.epoch_snapshot_dir}) {
    if (dir.empty()) continue;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }

  GroundTruth truth(&*world);
  std::vector<ConceptId> scope;
  for (size_t ci = 0; ci < world->num_concepts(); ++ci) {
    scope.push_back(ConceptId(static_cast<uint32_t>(ci)));
  }

  StreamPipeline pipeline(&*world, options);
  const std::vector<Sentence>& all = corpus->sentences.sentences();
  size_t total = all.size();
  for (int k = 0; k < epochs; ++k) {
    size_t begin = total * static_cast<size_t>(k) / static_cast<size_t>(epochs);
    size_t end = total * static_cast<size_t>(k + 1) / static_cast<size_t>(epochs);
    std::vector<Sentence> delta(all.begin() + begin, all.begin() + end);
    auto stats = pipeline.RunEpoch(std::move(delta), k + 1 == epochs);
    if (!stats.ok()) {
      std::fprintf(stderr, "epoch %d: %s\n", k + 1,
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("epoch %d/%d [%s]: +%zu sentences (%zu total), %zu dirty, "
                "%zu extracted, %zu rolled back, %zu pairs",
                stats->epoch, epochs,
                stats->full_rebuild ? (stats->escalated ? "rebuild:escalated"
                                                        : "rebuild")
                                    : "incremental",
                stats->sentences_ingested, stats->corpus_size,
                stats->dirty_concepts, stats->extractions,
                stats->records_rolled_back, stats->live_pairs);
    if (stats->generation > 0) {
      std::printf(", gen %llu (%s)",
                  static_cast<unsigned long long>(stats->generation),
                  stats->published_delta ? "delta" : "full");
    }
    std::printf("\n");
    std::fflush(stdout);
    if (sleep_ms > 0 && k + 1 < epochs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  }
  std::printf("stream done: %d epochs, %zu sentences, %zu live pairs "
              "(precision %.3f), generation %llu\n",
              epochs, pipeline.sentences().size(), pipeline.kb().num_live_pairs(),
              LivePairPrecision(truth, pipeline.kb(), scope),
              static_cast<unsigned long long>(pipeline.generation()));
  return WriteObsArtifacts(flags);
}

int Parse(const Flags& flags) {
  ApplyThreadsFlag(flags);
  auto world = LoadWorld(flags.Get("world", "world.tsv"));
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }
  HearstParser parser(&world->concept_vocab(), world->instance_vocab());
  std::string line;
  while (std::getline(std::cin, line)) {
    auto parsed = parser.Parse(line);
    if (!parsed.has_value()) {
      std::printf("NO-MATCH\t%s\n", line.c_str());
      continue;
    }
    std::printf("MATCH\tconcepts=[");
    for (size_t i = 0; i < parsed->candidate_concepts.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  world->ConceptName(parsed->candidate_concepts[i]).c_str());
    }
    std::printf("]\tinstances=[");
    for (size_t i = 0; i < parsed->candidate_instances.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  parser.instance_lexicon().TermOf(parsed->candidate_instances[i].value)
                      .c_str());
    }
    std::printf("]\n");
  }
  return 0;
}

Result<SnapshotReader> OpenSnapshotOrDie(const std::string& path,
                                         bool use_mmap = false) {
  if (path.empty()) {
    std::fprintf(stderr, "--snapshot is required\n");
    std::exit(2);
  }
  SnapshotOpenOptions options;
  options.source = use_mmap ? SnapshotSource::kMmap : SnapshotSource::kRead;
  return SnapshotReader::Open(path, options);
}

/// The serve loop proper, shared by single-snapshot and hot-swap modes:
/// stdin feeds the batcher, a printer thread emits responses in request
/// order, and an optional stats thread snapshots to stderr.
int ServeLoop(Batcher& batcher, const std::function<std::string()>& format_stats,
              uint64_t stats_interval_ms) {
  // Optional periodic stats snapshots on stderr (stdout stays pure protocol).
  std::mutex stats_mu;
  std::condition_variable stats_cv;
  bool stats_stop = false;
  std::thread stats_thread;
  if (stats_interval_ms > 0) {
    stats_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(stats_mu);
      while (!stats_cv.wait_for(lock, std::chrono::milliseconds(stats_interval_ms),
                                [&] { return stats_stop; })) {
        std::fprintf(stderr, "%s\n", format_stats().c_str());
      }
    });
  }

  // Reader/printer split: stdin keeps feeding the batcher while earlier
  // requests execute (that concurrency is what makes batches form), and a
  // printer thread emits responses strictly in request order.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::future<std::string>> pending;
  bool input_done = false;
  std::thread printer([&] {
    for (;;) {
      std::future<std::string> next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return input_done || !pending.empty(); });
        if (pending.empty()) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      std::string response = next.get();
      std::fputs(response.c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
    }
  });
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    std::future<std::string> response = batcher.Submit(line);
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.push_back(std::move(response));
    }
    cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    input_done = true;
  }
  cv.notify_all();
  printer.join();
  if (stats_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      stats_stop = true;
    }
    stats_cv.notify_all();
    stats_thread.join();
  }
  return 0;
}

/// Signal-driven shutdown for `serve --listen`: the handler writes one byte
/// into a self-pipe (the only async-signal-safe notification there is), and
/// the main thread blocks on poll() until it arrives.
int g_shutdown_pipe[2] = {-1, -1};

extern "C" void HandleShutdownSignal(int) {
  const char byte = 1;
  // Best-effort: a full pipe already means shutdown is pending.
  [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

/// Runs the network front-end until SIGINT/SIGTERM. Prints the resolved
/// endpoint to stderr (port 0 means "pick one", so scripts need the answer).
int RunNetServer(ShardRouter& router, const std::string& listen,
                 uint64_t stats_interval_ms) {
  NetServerOptions server_options;
  server_options.listen = listen;
  NetServer server(&router, server_options);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  if (::pipe(g_shutdown_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa {};
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  std::fprintf(stderr, "listening on %s; %u shards; ready\n",
               server.endpoint().c_str(), router.num_shards());

  const int timeout_ms =
      stats_interval_ms > 0 ? static_cast<int>(stats_interval_ms) : -1;
  for (;;) {
    pollfd pfd{g_shutdown_pipe[0], POLLIN, 0};
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0 && errno == EINTR) continue;
    if (n > 0) break;  // Signal arrived (or the pipe broke; either way: out).
    // Timeout: periodic stats snapshot, answered through the router's own
    // `stats` path so the line matches what a socket client would see.
    std::promise<std::string> stats;
    router.Submit("stats", RequestPriority::kHigh,
                  [&stats](std::string r) { stats.set_value(std::move(r)); });
    std::fprintf(stderr, "%s\n", stats.get_future().get().c_str());
  }
  server.Stop();
  ::close(g_shutdown_pipe[0]);
  ::close(g_shutdown_pipe[1]);
  g_shutdown_pipe[0] = g_shutdown_pipe[1] = -1;
  return 0;
}

/// `serve --listen`: socket front-end over the sharded router instead of the
/// stdin/stdout loop. Shares the snapshot/publish-dir/admission flags with
/// the stdin mode; adds --shards (worker count) and --mmap (zero-copy
/// snapshot load).
int ServeNet(const Flags& flags) {
  ApplyThreadsFlag(flags);
  RouterOptions router_options;
  router_options.num_shards =
      static_cast<uint32_t>(flags.GetUint("shards", 1));
  if (router_options.num_shards == 0) router_options.num_shards = 1;
  router_options.engine.cache_capacity = flags.GetUint("cache", 4096);
  router_options.engine.cache_shards = flags.GetUint("cache-shards", 16);
  router_options.batch.max_batch = flags.GetUint("max-batch", 64);
  router_options.batch.max_wait_ms =
      static_cast<int>(flags.GetUint("max-wait-ms", 1));
  router_options.batch.default_deadline_ms =
      static_cast<int>(flags.GetUint("deadline-ms", 1000));
  router_options.batch.deadline_budget_ms =
      static_cast<int>(flags.GetUint("deadline-budget-ms", 0));
  const uint64_t stats_interval_ms = flags.GetUint("stats-interval-ms", 0);
  const std::string listen = flags.Get("listen", "");
  // A malformed address is a usage error (exit 2), same as any bad flag
  // value — not a runtime serving failure.
  ListenAddress parsed_listen;
  std::string listen_error;
  if (!ParseListenAddress(listen, &parsed_listen, &listen_error)) {
    std::fprintf(stderr, "--listen: %s\n", listen_error.c_str());
    return 2;
  }

  std::string publish_dir = flags.Get("publish-dir", "");
  if (!publish_dir.empty()) {
    SnapshotManagerOptions manager_options;
    manager_options.dir = publish_dir;
    manager_options.engine = router_options.engine;
    SnapshotManager manager(manager_options);
    if (Status initial = manager.LoadInitial(); !initial.ok()) {
      std::fprintf(stderr, "%s\n", initial.ToString().c_str());
      return 1;
    }
    ShardRouter router(&manager, router_options);
    manager.StartWatching(flags.GetUint("poll-ms", 200));
    const int rc = RunNetServer(router, listen, stats_interval_ms);
    manager.StopWatching();
    return rc;
  }

  auto reader = OpenSnapshotOrDie(flags.Get("snapshot", ""), flags.Has("mmap"));
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  ShardRouter router(&*reader, router_options);
  return RunNetServer(router, listen, stats_interval_ms);
}

int Serve(const Flags& flags) {
  if (!flags.Get("listen", "").empty()) return ServeNet(flags);
  ApplyThreadsFlag(flags);
  QueryEngineOptions engine_options;
  engine_options.cache_capacity = flags.GetUint("cache", 4096);
  engine_options.cache_shards = flags.GetUint("cache-shards", 16);
  BatcherOptions batch_options;
  batch_options.max_batch = flags.GetUint("max-batch", 64);
  batch_options.max_wait_ms = static_cast<int>(flags.GetUint("max-wait-ms", 1));
  batch_options.default_deadline_ms =
      static_cast<int>(flags.GetUint("deadline-ms", 1000));
  batch_options.deadline_budget_ms =
      static_cast<int>(flags.GetUint("deadline-budget-ms", 0));
  uint64_t stats_interval_ms = flags.GetUint("stats-interval-ms", 0);

  std::string publish_dir = flags.Get("publish-dir", "");
  if (!publish_dir.empty()) {
    // Hot-swap mode: a SnapshotManager watches the publish directory and
    // flips generations atomically; the batcher pins one generation per
    // batch. The manager is declared before the batcher so it outlives the
    // batcher's shutdown drain (which still resolves pins).
    SnapshotManagerOptions manager_options;
    manager_options.dir = publish_dir;
    manager_options.engine = engine_options;
    SnapshotManager manager(manager_options);
    Status initial = manager.LoadInitial();
    if (!initial.ok()) {
      std::fprintf(stderr, "%s\n", initial.ToString().c_str());
      return 1;
    }
    Batcher batcher(EngineSource([&manager] { return manager.Pin(); }),
                    batch_options);
    uint64_t poll_ms = flags.GetUint("poll-ms", 200);
    manager.StartWatching(poll_ms);
    {
      auto current = manager.Current();
      std::fprintf(stderr,
                   "serving generation %llu: %u concepts, %u instances, "
                   "%llu pairs; watching %s; ready\n",
                   static_cast<unsigned long long>(current->generation),
                   current->reader.num_concepts(), current->reader.num_instances(),
                   static_cast<unsigned long long>(current->reader.num_pairs()),
                   publish_dir.c_str());
    }
    int rc = ServeLoop(
        batcher,
        [&manager] { return manager.Current()->engine->FormatStats(); },
        stats_interval_ms);
    manager.StopWatching();
    return rc;
  }

  auto reader = OpenSnapshotOrDie(flags.Get("snapshot", ""), flags.Has("mmap"));
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  QueryEngine engine(&*reader, engine_options);
  Batcher batcher(&engine, batch_options);
  std::fprintf(stderr, "serving %u concepts, %u instances, %llu pairs; ready\n",
               reader->num_concepts(), reader->num_instances(),
               static_cast<unsigned long long>(reader->num_pairs()));
  return ServeLoop(batcher, [&engine] { return engine.FormatStats(); },
                   stats_interval_ms);
}

/// One-shot query. Positional arguments become protocol fields (joined with
/// tabs), so a quoted multi-word name stays a single field. The exit code
/// mirrors the response class so scripts can branch without parsing: 0 OK,
/// 1 ERR, 3 NOT_FOUND, 4 OVERLOADED (reserved — one-shots never shed).
int Query(int argc, char** argv) {
  std::string snapshot_path;
  std::string connect;
  bool use_mmap = false;
  std::string line;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--mmap") {
      use_mmap = true;
      continue;
    }
    if (arg == "--snapshot" || arg == "--connect" || arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return 2;
      }
      if (arg == "--snapshot") {
        snapshot_path = argv[++i];
      } else if (arg == "--connect") {
        connect = argv[++i];
      } else {
        uint64_t threads = 0;
        if (!ParseUint64(argv[++i], &threads)) {
          std::fprintf(stderr, "invalid value for --threads: '%s'\n", argv[i]);
          return 2;
        }
        SetGlobalThreadCount(static_cast<int>(threads));
      }
      continue;
    }
    if (StartsWith(arg, "--")) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
    if (!line.empty()) line += '\t';
    line += arg;
  }
  if (line.empty()) {
    std::fprintf(stderr,
                 "usage: semdrift query --snapshot S | --connect EP "
                 "<verb> <args...>\n");
    return 2;
  }
  std::string response;
  if (!connect.empty()) {
    // Remote one-shot: same request, same exit-code contract, answered by a
    // running `serve --listen` instance over its socket.
    auto client = LineClient::Connect(connect);
    if (!client.ok()) {
      std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
      return 1;
    }
    auto remote = client->RoundTrip(line);
    if (!remote.ok()) {
      std::fprintf(stderr, "%s\n", remote.status().ToString().c_str());
      return 1;
    }
    response = std::move(remote).value();
  } else {
    auto reader = OpenSnapshotOrDie(snapshot_path, use_mmap);
    if (!reader.ok()) {
      std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
      return 1;
    }
    QueryEngine engine(&*reader);
    response = engine.Answer(line);
  }
  std::printf("%s\n", response.c_str());
  if (StartsWith(response, "OK")) return 0;
  if (StartsWith(response, "NOT_FOUND")) return 3;
  if (StartsWith(response, "OVERLOADED")) return 4;
  return 1;
}

/// Integrity gate for stored snapshots: Open() re-checks framing and every
/// CRC, then Validate() walks the deep structural invariants. With extra
/// arguments the remaining files are verified as a delta chain rooted at the
/// base: each delta's framing, checksum, base binding (generation + base
/// image CRC32) and record invariants are checked, and each materialized
/// image is re-opened so Validate() runs on every generation the chain can
/// produce. Non-zero exit on any corruption makes this usable as a deploy
/// precondition.
int SnapshotVerify(int argc, char** argv) {
  if (argc < 3 || StartsWith(argv[2], "--")) {
    std::fprintf(stderr,
                 "usage: semdrift snapshot-verify <base> [delta...]\n");
    return 2;
  }
  std::string path = argv[2];
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) {
    std::fprintf(stderr, "FAIL %s\n", bytes.status().ToString().c_str());
    return 1;
  }
  auto reader = SnapshotReader::OpenFromBuffer(*bytes, path);
  if (!reader.ok()) {
    std::fprintf(stderr, "FAIL %s\n", reader.status().ToString().c_str());
    return 1;
  }
  std::printf("OK %s: %u concepts, %u instances, %llu pairs, %llu mutex pairs, "
              "%llu bytes\n",
              path.c_str(), reader->num_concepts(), reader->num_instances(),
              static_cast<unsigned long long>(reader->num_pairs()),
              static_cast<unsigned long long>(reader->num_mutex_pairs()),
              static_cast<unsigned long long>(reader->file_bytes()));
  if (argc == 3) return 0;

  // Walk the chain. The first delta declares which generation the base is;
  // the CRC binding is what actually authenticates it.
  SnapshotParts parts = PartsFromReader(*reader);
  uint32_t crc = Crc32Of(*bytes);
  uint64_t generation = 0;
  for (int i = 3; i < argc; ++i) {
    std::string delta_path = argv[i];
    auto delta = LoadSnapshotDelta(delta_path);
    if (!delta.ok()) {
      std::fprintf(stderr, "FAIL %s\n", delta.status().ToString().c_str());
      return 1;
    }
    if (i == 3) generation = delta->base_generation;
    auto image = MaterializeSnapshotDelta(*delta, parts, generation, crc);
    if (!image.ok()) {
      std::fprintf(stderr, "FAIL %s\n", image.status().ToString().c_str());
      return 1;
    }
    auto next = SnapshotReader::OpenFromBuffer(*image, delta_path);
    if (!next.ok()) {
      std::fprintf(stderr, "FAIL %s\n", next.status().ToString().c_str());
      return 1;
    }
    std::printf("OK %s: generation %llu, %zu records, materialized %u "
                "concepts, %u instances, %llu pairs\n",
                delta_path.c_str(),
                static_cast<unsigned long long>(delta->generation),
                delta->num_records(), next->num_concepts(),
                next->num_instances(),
                static_cast<unsigned long long>(next->num_pairs()));
    parts = PartsFromReader(*next);
    crc = Crc32Of(*image);
    generation = delta->generation;
  }
  std::printf("OK chain verified through generation %llu\n",
              static_cast<unsigned long long>(generation));
  return 0;
}

/// One fuzz-load target: a pristine file plus the loads to attempt on a
/// corrupted copy of it.
struct FuzzTally {
  int runs = 0;
  int strict_ok = 0;       // Corruption happened to be survivable.
  int strict_rejected = 0; // Clean Status error.
  int lenient_ok = 0;
  int lenient_rejected = 0;
  int violations = 0;      // LoadReport failed to account for the damage.
};

void PrintTally(const char* name, const FuzzTally& t) {
  std::printf("%-10s %5d runs  strict ok/rejected %4d/%4d  "
              "lenient ok/rejected %4d/%4d  violations %d\n",
              name, t.runs, t.strict_ok, t.strict_rejected, t.lenient_ok,
              t.lenient_rejected, t.violations);
}

/// A lenient load must account for every payload line: seen = loaded +
/// skipped. Anything else means lines vanished silently.
bool ReportAccounts(const LoadReport& report) {
  return report.lines_seen == report.lines_loaded + report.skipped.size();
}

int FuzzLoad(const Flags& flags) {
  ApplyThreadsFlag(flags);
  uint64_t seed = flags.GetUint("seed", 2014);
  int count = static_cast<int>(flags.GetUint("count", 200));
  double scale = flags.GetDouble("scale", 0.05);
  std::string dir = flags.Get("dir", "");
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "semdrift-fuzz").string();
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(), ec.message().c_str());
    return 1;
  }

  // Pristine artifacts to corrupt: a world, a corpus, and a real checkpoint
  // produced by a short checkpointed extraction over them.
  ExperimentConfig config = PaperScaleConfig(scale);
  config.seed = seed;
  config.corpus.render_text = true;
  auto experiment = Experiment::Build(config);
  std::string world_path = dir + "/world.tsv";
  std::string corpus_path = dir + "/corpus.tsv";
  Status s = SaveWorld(experiment->world(), world_path);
  if (s.ok()) s = SaveCorpus(experiment->world(), experiment->corpus(), corpus_path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  CheckpointConfig checkpoint;
  checkpoint.dir = dir + "/ckpt";
  std::vector<IterationStats> stats;
  auto kb = experiment->ExtractWithCheckpoints(checkpoint, &stats);
  if (!kb.ok() || stats.empty()) {
    std::fprintf(stderr, "checkpoint seed run failed: %s\n",
                 kb.status().ToString().c_str());
    return 1;
  }
  std::string checkpoint_path = CheckpointPath(checkpoint.dir, stats.back().iteration);

  // Serving artifacts round out the target set: a full snapshot compiled
  // from the extracted KB, and a delta from that snapshot to a perturbed
  // compile (one score nudged, so the delta carries real records).
  std::string snap_path = dir + "/snap.bin";
  s = WriteServingSnapshot(*kb, experiment->world(),
                           experiment->corpus().sentences.size(), nullptr,
                           snap_path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto snap_bytes = ReadFileToString(snap_path);
  if (!snap_bytes.ok()) {
    std::fprintf(stderr, "%s\n", snap_bytes.status().ToString().c_str());
    return 1;
  }
  const uint32_t base_crc = Crc32Of(*snap_bytes);
  auto base_reader = SnapshotReader::OpenFromBuffer(*snap_bytes, snap_path);
  if (!base_reader.ok()) {
    std::fprintf(stderr, "%s\n", base_reader.status().ToString().c_str());
    return 1;
  }
  const SnapshotParts base_parts = PartsFromReader(*base_reader);
  std::string delta_path = dir + "/delta.bin";
  {
    SnapshotParts next_parts = base_parts;
    if (!next_parts.score.empty()) next_parts.score[0] += 1.0;
    auto delta = DiffSnapshotParts(base_parts, next_parts);
    if (!delta.ok()) {
      std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
      return 1;
    }
    delta->base_generation = 1;
    delta->base_crc32 = base_crc;
    delta->generation = 2;
    Status wrote = WriteSnapshotDeltaFile(*delta, delta_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
      return 1;
    }
  }

  std::vector<std::string> pristine(5);
  const char* names[5] = {"world", "corpus", "checkpoint", "snapshot", "delta"};
  const std::string paths[5] = {world_path, corpus_path, checkpoint_path,
                                snap_path, delta_path};
  for (int t = 0; t < 5; ++t) {
    auto content = ReadFileToString(paths[t]);
    if (!content.ok()) {
      std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
      return 1;
    }
    pristine[t] = std::move(*content);
  }

  // The sweep runs across the thread pool: each iteration corrupts into its
  // own scratch file, loads, and returns an outcome. Ordered reduction of
  // the outcomes makes the tallies identical to the serial sweep (each
  // iteration's FaultInjector is seeded by index, never by schedule).
  struct FuzzOutcome {
    int target = 0;
    FuzzTally delta;
    std::string io_error;  // Scratch-file write failure, fatal.
  };
  std::vector<FuzzOutcome> outcomes = ParallelMap<FuzzOutcome>(
      static_cast<size_t>(count), [&](size_t i) {
        FuzzOutcome out;
        out.target = static_cast<int>(i % 5);
        FaultInjector injector(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
        FaultKind kind;
        std::string corrupted = injector.CorruptRandom(pristine[out.target], &kind);
        std::string fuzz_path = dir + "/fuzzed-" + std::to_string(i) + ".bin";
        Status written = WriteStringToFile(corrupted, fuzz_path);
        if (!written.ok()) {
          out.io_error = written.ToString();
          return out;
        }
        FuzzTally& tally = out.delta;
        ++tally.runs;
        if (out.target == 0) {
          auto strict = LoadWorld(fuzz_path);
          strict.ok() ? ++tally.strict_ok : ++tally.strict_rejected;
          LoadOptions lenient{LoadOptions::Mode::kLenient};
          LoadReport report;
          auto loose = LoadWorld(fuzz_path, lenient, &report);
          loose.ok() ? ++tally.lenient_ok : ++tally.lenient_rejected;
          if (loose.ok() && !ReportAccounts(report)) ++tally.violations;
        } else if (out.target == 1) {
          auto strict = LoadCorpus(experiment->world(), fuzz_path);
          strict.ok() ? ++tally.strict_ok : ++tally.strict_rejected;
          LoadOptions lenient{LoadOptions::Mode::kLenient};
          LoadReport report;
          auto loose = LoadCorpus(experiment->world(), fuzz_path, lenient, &report);
          loose.ok() ? ++tally.lenient_ok : ++tally.lenient_rejected;
          if (loose.ok() && !ReportAccounts(report)) ++tally.violations;
        } else if (out.target == 2) {
          // Checkpoints have no lenient mode: the full restore pipeline (load,
          // replay, validate) must either produce a valid KB or reject cleanly.
          auto loaded = LoadCheckpoint(fuzz_path);
          if (!loaded.ok()) {
            ++tally.strict_rejected;
          } else {
            auto restored = KnowledgeBase::FromRecords(loaded->records);
            if (restored.ok() &&
                restored->Validate(experiment->world().num_concepts(),
                                   experiment->corpus().sentences.size()).ok()) {
              ++tally.strict_ok;
            } else {
              ++tally.strict_rejected;
            }
          }
        } else if (out.target == 3) {
          // Snapshots are strict-only by design: Open() re-checks every CRC
          // and then deep-validates structure.
          auto opened = SnapshotReader::Open(fuzz_path);
          opened.ok() ? ++tally.strict_ok : ++tally.strict_rejected;
        } else {
          // Deltas: load, materialize against the pristine base, and re-open
          // the produced image. A delta that loads and materializes must
          // yield a snapshot that passes full validation — anything else is
          // a containment violation, not a mere rejection.
          auto delta = LoadSnapshotDelta(fuzz_path);
          if (!delta.ok()) {
            ++tally.strict_rejected;
          } else {
            auto image = MaterializeSnapshotDelta(*delta, base_parts, 1, base_crc);
            if (!image.ok()) {
              ++tally.strict_rejected;
            } else {
              auto opened = SnapshotReader::OpenFromBuffer(*image, fuzz_path);
              if (opened.ok()) {
                ++tally.strict_ok;
              } else {
                ++tally.violations;
              }
            }
          }
        }
        std::error_code remove_ec;
        std::filesystem::remove(fuzz_path, remove_ec);  // Best-effort scratch cleanup.
        return out;
      });

  FuzzTally tallies[5];
  int violations = 0;
  for (const FuzzOutcome& out : outcomes) {
    if (!out.io_error.empty()) {
      std::fprintf(stderr, "%s\n", out.io_error.c_str());
      return 1;
    }
    FuzzTally& tally = tallies[out.target];
    tally.runs += out.delta.runs;
    tally.strict_ok += out.delta.strict_ok;
    tally.strict_rejected += out.delta.strict_rejected;
    tally.lenient_ok += out.delta.lenient_ok;
    tally.lenient_rejected += out.delta.lenient_rejected;
    tally.violations += out.delta.violations;
  }

  std::printf("fuzz-load: %d corruptions over %s seed %llu\n", count, dir.c_str(),
              static_cast<unsigned long long>(seed));
  for (int t = 0; t < 5; ++t) {
    PrintTally(names[t], tallies[t]);
    violations += tallies[t].violations;
  }
  if (violations > 0) {
    std::fprintf(stderr,
                 "FAIL: %d loads did not account for or contain the damage\n",
                 violations);
    return 1;
  }
  std::printf("OK: no crashes, every load rejected cleanly or accounted for damage\n");
  return 0;
}

/// Replays checked-in scenarios against their recorded envelopes. One line
/// per scenario; any violation fails the whole invocation (the ctest gate
/// and check.sh --scenarios both run this over scenarios/*.toml).
int ScenarioRun(const std::vector<std::string>& files, const Flags& flags) {
  ApplyThreadsFlag(flags);
  if (files.empty()) {
    std::fprintf(stderr, "scenario-run: no scenario files given\n");
    return 2;
  }
  int failures = 0;
  for (const std::string& path : files) {
    auto scenario = scenario::LoadScenarioFile(path);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   scenario.status().ToString().c_str());
      return 2;
    }
    auto outcome = scenario::RunScenario(*scenario);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   outcome.status().ToString().c_str());
      return 2;
    }
    if (flags.Has("pin-envelope")) {
      // Authoring aid: record the measured behavior as the file's replay
      // envelope (tight precision bands, cost ceilings) and rewrite it.
      scenario::PinEnvelope(&*scenario, outcome->metrics);
      if (Status s = scenario::SaveScenarioFile(*scenario, path); !s.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), s.ToString().c_str());
        return 2;
      }
      outcome = scenario::RunScenario(*scenario);
      if (!outcome.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     outcome.status().ToString().c_str());
        return 2;
      }
    }
    std::printf("%-28s %s  %s\n", scenario->name.c_str(),
                outcome->ok() ? "PASS" : "FAIL",
                scenario::FormatMetricsLine(outcome->metrics).c_str());
    if (flags.Has("verbose") && !scenario->notes.empty()) {
      std::printf("  notes: %s\n", scenario->notes.c_str());
    }
    for (const std::string& violation : outcome->violations) {
      std::printf("  violation: %s\n", violation.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int ScenarioHunt(const Flags& flags) {
  ApplyThreadsFlag(flags);
  scenario::HuntOptions options;
  options.seed = flags.GetUint("seed", 1);
  options.num_samples = static_cast<int>(flags.GetUint("samples", 50));
  options.archetype = flags.Get("archetype", "");
  options.precision_floor = flags.GetDouble("floor", options.precision_floor);
  options.regression_margin =
      flags.GetDouble("margin", options.regression_margin);
  options.shrink = !flags.Has("no-shrink");
  options.shrink_options.max_evaluations = static_cast<size_t>(
      flags.GetUint("max-shrink-evals", options.shrink_options.max_evaluations));
  options.log = [](const std::string& line) {
    std::fprintf(stderr, "%s\n", line.c_str());
  };
  auto report = scenario::RunHunt(options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("hunted %zu samples, %zu findings\n", report->samples_run,
              report->findings.size());
  const std::string out_dir = flags.Get("out-dir", "");
  for (const auto& finding : report->findings) {
    std::printf("%s: %s\n", finding.scenario.name.c_str(),
                finding.summary.c_str());
    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir);
      const std::string path =
          out_dir + "/" + finding.scenario.name + ".toml";
      if (Status s = scenario::SaveScenarioFile(finding.scenario, path);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("  -> %s\n", path.c_str());
    }
  }
  return 0;
}

/// Prints (or saves) one grammar sample — the authoring starting point for
/// hand-written scenarios, and the determinism probe for tests.
int ScenarioSample(const Flags& flags) {
  const uint64_t seed = flags.GetUint("seed", 1);
  const std::string archetype = flags.Get("archetype", "");
  scenario::Scenario s = archetype.empty()
                             ? scenario::SampleScenario(seed)
                             : scenario::SampleScenario(seed, archetype);
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fputs(scenario::ScenarioToToml(s).c_str(), stdout);
    return 0;
  }
  if (Status st = scenario::SaveScenarioFile(s, out); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s -> %s\n", s.name.c_str(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "generate") {
    Flags flags(argc, argv, 2, {"scale", "seed", "world", "corpus", "threads"}, {});
    if (!flags.ok()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return Usage();
    }
    return Generate(flags);
  }
  if (command == "run") {
    Flags flags(argc, argv, 2,
                {"world", "corpus", "out", "snapshot-out", "snapshot-delta-out",
                 "snapshot-delta-base", "snapshot-delta-base-gen",
                 "checkpoint-dir", "keep-checkpoints", "threads",
                 "stage-deadline-ms", "max-retries", "quarantine", "fault-rate",
                 "fault-seed", "fault-kinds", "fault-stages", "trace-out",
                 "trace-chrome", "metrics-out"},
                {"no-clean", "resume", "validate", "lenient", "supervise",
                 "health-report"});
    if (!flags.ok()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return Usage();
    }
    return Run(flags);
  }
  if (command == "stream") {
    Flags flags(argc, argv, 2,
                {"world", "corpus", "epochs", "full-rebuild-every",
                 "rebuild-dirty-frac", "publish-dir", "epoch-snapshots",
                 "max-iterations", "max-rounds", "epoch-sleep-ms", "threads",
                 "trace-out", "trace-chrome", "metrics-out"},
                {"lenient", "no-final-rebuild"});
    if (!flags.ok()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return Usage();
    }
    return StreamCmd(flags);
  }
  if (command == "parse") {
    Flags flags(argc, argv, 2, {"world", "threads"}, {});
    if (!flags.ok()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return Usage();
    }
    return Parse(flags);
  }
  if (command == "serve") {
    Flags flags(argc, argv, 2,
                {"snapshot", "publish-dir", "poll-ms", "cache", "cache-shards",
                 "max-batch", "max-wait-ms", "deadline-ms", "deadline-budget-ms",
                 "stats-interval-ms", "threads", "listen", "shards"},
                {"mmap"});
    if (!flags.ok()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return Usage();
    }
    return Serve(flags);
  }
  if (command == "query") return Query(argc, argv);
  if (command == "snapshot-verify") return SnapshotVerify(argc, argv);
  if (command == "scenario-run") {
    std::vector<std::string> files;
    int i = 2;
    while (i < argc && !StartsWith(argv[i], "--")) files.push_back(argv[i++]);
    Flags flags(argc, argv, i, {"threads"}, {"verbose", "pin-envelope"});
    if (!flags.ok()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return Usage();
    }
    return ScenarioRun(files, flags);
  }
  if (command == "scenario-hunt") {
    Flags flags(argc, argv, 2,
                {"seed", "samples", "archetype", "floor", "margin",
                 "max-shrink-evals", "out-dir", "threads"},
                {"no-shrink"});
    if (!flags.ok()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return Usage();
    }
    return ScenarioHunt(flags);
  }
  if (command == "scenario-sample") {
    Flags flags(argc, argv, 2, {"seed", "archetype", "out", "threads"}, {});
    if (!flags.ok()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return Usage();
    }
    return ScenarioSample(flags);
  }
  if (command == "fuzz-load") {
    Flags flags(argc, argv, 2, {"count", "seed", "scale", "dir", "threads"}, {});
    if (!flags.ok()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return Usage();
    }
    return FuzzLoad(flags);
  }
  return Usage();
}
