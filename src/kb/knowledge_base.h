#ifndef SEMDRIFT_KB_KNOWLEDGE_BASE_H_
#define SEMDRIFT_KB_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "text/ids.h"
#include "util/status.h"

namespace semdrift {

/// One extraction event: a sentence was understood under `concept`, adding
/// support to every (concept, instance) pair in `instances`. `triggers` are
/// the instances already known under `concept` that licensed the attachment
/// (Sec. 2.1: "an existing instance triggers the extraction"); empty for
/// iteration-1 (unambiguous) extractions. Records are immutable except for
/// the rolled_back flag.
struct ExtractionRecord {
  uint32_t id = 0;
  SentenceId sentence;
  ConceptId concept_id;
  int iteration = 0;
  std::vector<InstanceId> instances;
  std::vector<InstanceId> triggers;
  bool rolled_back = false;
};

/// Support and provenance for one isA pair.
struct PairStats {
  /// Live support: number of non-rolled-back extraction records producing
  /// this pair. The pair is *live* while count > 0 (Sec. 4.2).
  int count = 0;
  /// Support gathered in iteration 1 (the "core pair" count, Sec. 3.2.1).
  int iter1_count = 0;
  /// Iteration of the first extraction that produced the pair.
  int first_iteration = -1;
  /// Ids of records that produced this pair (rolled-back ones included;
  /// check the record flag).
  std::vector<uint32_t> producing_records;
  /// Ids of records in which this pair served as a trigger.
  std::vector<uint32_t> triggered_records;
};

/// When a pair dies (support reaches zero), which dependent extractions are
/// rolled back in the cascade (Sec. 4.2)?
enum class CascadePolicy {
  /// Roll back a dependent record only when *all* of its triggers are dead
  /// (the extraction could no longer have been licensed). Default.
  kAllTriggersDead,
  /// Roll back a dependent record as soon as *any* of its triggers dies
  /// (the paper's aggressive wording; ablated in bench_micro).
  kAnyTriggerDead,
};

/// The isA knowledge base: pair support counts, extraction provenance, the
/// trigger graph, and the cascading rollback engine of Sec. 4.2. All
/// mutation goes through ApplyExtraction / rollback entry points so that
/// counts, liveness and provenance can never disagree.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  // -- Ingest ---------------------------------------------------------------

  /// Records one extraction event and bumps support of every produced pair.
  /// Returns the new record id.
  uint32_t ApplyExtraction(SentenceId sentence, ConceptId c,
                           const std::vector<InstanceId>& instances,
                           const std::vector<InstanceId>& triggers, int iteration);

  /// Rebuilds a knowledge base from a provenance log (the checkpoint restore
  /// path): records are re-applied in id order, then rolled-back flags are
  /// re-asserted without cascading (the flags already encode the cascade's
  /// outcome). Unlike ApplyExtraction this never trusts its input — a record
  /// whose id breaks the sequence, whose trigger was never a live pair, or
  /// whose ids are invalid yields kDataLoss instead of corrupt state.
  static Result<KnowledgeBase> FromRecords(const std::vector<ExtractionRecord>& records);

  // -- Queries --------------------------------------------------------------

  /// Pair is live (support > 0).
  bool Contains(const IsAPair& pair) const { return Count(pair) > 0; }

  int Count(const IsAPair& pair) const;
  int Iter1Count(const IsAPair& pair) const;
  /// -1 when the pair was never extracted.
  int FirstIteration(const IsAPair& pair) const;

  /// Full stats; nullptr when the pair was never extracted.
  const PairStats* Find(const IsAPair& pair) const;

  /// Every instance ever extracted under `c` (including since-removed ones).
  const std::vector<InstanceId>& InstancesEverOf(ConceptId c) const;

  /// Instances currently live under `c`.
  std::vector<InstanceId> LiveInstancesOf(ConceptId c) const;

  /// Live instances of `c` extracted in iteration 1 — E(C, 1) of Eq. 1 —
  /// paired with their iteration-1 support counts.
  std::vector<std::pair<InstanceId, int>> Iter1InstancesOf(ConceptId c) const;

  size_t num_live_pairs() const { return live_pairs_; }
  size_t num_records() const { return records_.size(); }

  const ExtractionRecord& record(uint32_t id) const { return records_[id]; }
  const std::vector<ExtractionRecord>& records() const { return records_; }

  /// Record ids (live and dead) under concept `c`.
  const std::vector<uint32_t>& RecordsOfConcept(ConceptId c) const;

  /// Invokes `fn` for every live record under `c`.
  void ForEachLiveRecordOfConcept(ConceptId c,
                                  const std::function<void(const ExtractionRecord&)>& fn) const;

  /// Live records in which (c, e) served as a trigger — the extractions
  /// "activated by" the pair; sub(e) is the union of their instances.
  std::vector<uint32_t> LiveRecordsTriggeredBy(const IsAPair& pair) const;

  /// Sub-instances of (c, e) with trigger multiplicities: how often each
  /// instance was produced by extractions that (c, e) triggered (Sec. 2.1).
  std::unordered_map<InstanceId, int> SubInstancesOf(const IsAPair& pair) const;

  // -- Integrity -------------------------------------------------------------

  /// Full cross-check of the KB's internal invariants: every pair's support
  /// equals its live producing records, iteration-1 counts and first
  /// iterations match provenance, the trigger graph references only real
  /// records that actually list the pair as a trigger, the per-concept
  /// indexes agree with the pair table, and the live-pair counter is exact.
  /// Optional bounds (pass 0 to skip) additionally reject concept/sentence
  /// ids outside the world/corpus — the "dangling id" class of corruption.
  /// Called after every checkpoint restore (and per-iteration under a debug
  /// flag) so a corrupted restore can never silently poison later
  /// iterations and drift metrics. Returns kDataLoss naming the first
  /// violated invariant.
  Status Validate(size_t num_concepts = 0, size_t num_sentences = 0) const;

  /// Scoped variant for incremental (streaming) epochs: cross-checks only
  /// the records and pairs of the given concepts — support counts against
  /// live provenance, iteration-1 counts, first iterations, trigger-graph
  /// edges, index membership and sentence bounds — in O(records of scope)
  /// instead of O(records). An epoch that only touched `scope` can only have
  /// corrupted state reachable from `scope`, so this is the full invariant
  /// check restricted to what the epoch could have broken; full Validate()
  /// still runs on rebuild epochs. Returns kDataLoss naming the first
  /// violated invariant.
  Status ValidateConcepts(const std::vector<ConceptId>& scope,
                          size_t num_sentences = 0) const;

  // -- Rollback (Sec. 4.2) ---------------------------------------------------

  /// Rolls back one record and cascades through pair deaths per `policy`.
  /// Returns the number of records rolled back (including this one).
  /// Idempotent on already-rolled-back records.
  int RollbackRecord(uint32_t record_id, CascadePolicy policy);

  /// Force-removes a pair: rolls back every live record producing it, then
  /// cascades. Returns the number of records rolled back.
  int RemovePair(const IsAPair& pair, CascadePolicy policy);

  /// Rolls back every live record in which `pair` served as a trigger (the
  /// Accidental-DP treatment: extractions activated by the DP), then
  /// cascades. Returns the number of records rolled back.
  int RollbackTriggeredBy(const IsAPair& pair, CascadePolicy policy);

 private:
  /// Worklist-driven cascade starting from the given dead pairs.
  int CascadeDeadPairs(std::vector<IsAPair> dead, CascadePolicy policy);

  /// Rolls back exactly one record (no cascade); appends newly-dead pairs.
  /// Returns false when the record was already rolled back.
  bool RollbackOne(uint32_t record_id, std::vector<IsAPair>* newly_dead);

  std::unordered_map<IsAPair, PairStats, IsAPairHash> pairs_;
  std::vector<ExtractionRecord> records_;
  /// Instances ever seen per concept, indexed by concept id.
  std::vector<std::vector<InstanceId>> concept_instances_;
  /// Record ids per concept, indexed by concept id.
  std::vector<std::vector<uint32_t>> concept_records_;
  size_t live_pairs_ = 0;
};

}  // namespace semdrift

#endif  // SEMDRIFT_KB_KNOWLEDGE_BASE_H_
