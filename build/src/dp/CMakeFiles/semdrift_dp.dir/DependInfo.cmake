
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/cleaner.cc" "src/dp/CMakeFiles/semdrift_dp.dir/cleaner.cc.o" "gcc" "src/dp/CMakeFiles/semdrift_dp.dir/cleaner.cc.o.d"
  "/root/repo/src/dp/detector.cc" "src/dp/CMakeFiles/semdrift_dp.dir/detector.cc.o" "gcc" "src/dp/CMakeFiles/semdrift_dp.dir/detector.cc.o.d"
  "/root/repo/src/dp/features.cc" "src/dp/CMakeFiles/semdrift_dp.dir/features.cc.o" "gcc" "src/dp/CMakeFiles/semdrift_dp.dir/features.cc.o.d"
  "/root/repo/src/dp/seed_labeling.cc" "src/dp/CMakeFiles/semdrift_dp.dir/seed_labeling.cc.o" "gcc" "src/dp/CMakeFiles/semdrift_dp.dir/seed_labeling.cc.o.d"
  "/root/repo/src/dp/sentence_check.cc" "src/dp/CMakeFiles/semdrift_dp.dir/sentence_check.cc.o" "gcc" "src/dp/CMakeFiles/semdrift_dp.dir/sentence_check.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/semdrift_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/mutex/CMakeFiles/semdrift_mutex.dir/DependInfo.cmake"
  "/root/repo/build/src/rank/CMakeFiles/semdrift_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/semdrift_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/semdrift_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semdrift_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
