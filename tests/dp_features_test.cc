#include <gtest/gtest.h>

#include <memory>

#include "dp/features.h"

namespace semdrift {
namespace {

ConceptId C(uint32_t v) { return ConceptId(v); }
InstanceId E(uint32_t v) { return InstanceId(v); }
SentenceId S(uint32_t v) { return SentenceId(v); }

TEST(SparseCosineTest, EmptyIsZero) {
  std::unordered_map<InstanceId, int> empty;
  std::unordered_map<InstanceId, int> some{{E(1), 2}};
  EXPECT_EQ(SparseCosine(empty, some), 0.0);
  EXPECT_EQ(SparseCosine(some, empty), 0.0);
}

TEST(SparseCosineTest, IdenticalIsOne) {
  std::unordered_map<InstanceId, int> a{{E(1), 2}, {E(2), 3}};
  EXPECT_NEAR(SparseCosine(a, a), 1.0, 1e-12);
}

TEST(SparseCosineTest, DisjointIsZero) {
  std::unordered_map<InstanceId, int> a{{E(1), 2}};
  std::unordered_map<InstanceId, int> b{{E(2), 5}};
  EXPECT_EQ(SparseCosine(a, b), 0.0);
}

TEST(SparseCosineTest, KnownValue) {
  std::unordered_map<InstanceId, int> a{{E(1), 3}, {E(2), 4}};
  std::unordered_map<InstanceId, int> b{{E(1), 4}, {E(3), 3}};
  // dot = 12; |a| = 5, |b| = 5 -> 12/25.
  EXPECT_NEAR(SparseCosine(a, b), 0.48, 1e-12);
}

TEST(SparseCosineTest, SymmetricRegardlessOfSize) {
  std::unordered_map<InstanceId, int> a{{E(1), 1}, {E(2), 1}, {E(3), 1}};
  std::unordered_map<InstanceId, int> b{{E(1), 2}};
  EXPECT_NEAR(SparseCosine(a, b), SparseCosine(b, a), 1e-15);
}

/// Scenario: concept 0 ("animal") has core {e1 (popular), e2}. e1 triggers a
/// clean record {e3}; ep ("chicken") triggers a foreign record {e8, e9}
/// whose instances also live under the mutually exclusive concept 1
/// ("food"). e8 is never a trigger.
class FeatureScenario : public ::testing::Test {
 protected:
  FeatureScenario() {
    uint32_t sid = 0;
    // Animal core.
    kb_.ApplyExtraction(S(sid++), C(0), {E(1), E(2), E(10)}, {}, 1);
    kb_.ApplyExtraction(S(sid++), C(0), {E(1)}, {}, 1);
    kb_.ApplyExtraction(S(sid++), C(0), {E(1)}, {}, 1);
    kb_.ApplyExtraction(S(sid++), C(0), {E(2)}, {}, 1);
    // Food core (>= 3 instances so the concept is usable in the index).
    kb_.ApplyExtraction(S(sid++), C(1), {E(8), E(9), E(11)}, {}, 1);
    kb_.ApplyExtraction(S(sid++), C(1), {E(8)}, {}, 1);
    // Clean triggered record: e1 -> {e3} plus an overlap with the core.
    kb_.ApplyExtraction(S(sid++), C(0), {E(3), E(2)}, {E(1)}, 2);
    // Drifting record: e10 ("chicken") triggers food items into animal.
    kb_.ApplyExtraction(S(sid++), C(0), {E(8), E(9), E(10)}, {E(10)}, 2);
    mutex_ = std::make_unique<MutexIndex>(kb_, 2);
    scores_ = std::make_unique<ScoreCache>(&kb_, RankModel::kRandomWalk);
    features_ =
        std::make_unique<FeatureExtractor>(&kb_, mutex_.get(), scores_.get());
  }

  KnowledgeBase kb_;
  std::unique_ptr<MutexIndex> mutex_;
  std::unique_ptr<ScoreCache> scores_;
  std::unique_ptr<FeatureExtractor> features_;
};

TEST_F(FeatureScenario, F1HigherForCleanTrigger) {
  // e1's sub-instances ({e3, e2}) overlap the animal core (e2); e10's
  // ({e8, e9}) are disjoint from it.
  double clean = features_->F1(C(0), E(1));
  double drifting = features_->F1(C(0), E(10));
  EXPECT_GT(clean, 0.0);
  EXPECT_EQ(drifting, 0.0);
}

TEST_F(FeatureScenario, F1ZeroWithoutSubInstances) {
  EXPECT_EQ(features_->F1(C(0), E(2)), 0.0);
}

TEST_F(FeatureScenario, F2CountsMutexMembership) {
  // e8 now lives under both animal (drifted) and food, which are mutex.
  FeatureVector f = features_->Extract(C(0), E(8));
  EXPECT_EQ(f[1], 1.0);
  // e3 lives only under animal.
  FeatureVector f3 = features_->Extract(C(0), E(3));
  EXPECT_EQ(f3[1], 0.0);
}

TEST_F(FeatureScenario, F3ScaledScorePositiveForCore) {
  FeatureVector f = features_->Extract(C(0), E(1));
  EXPECT_GT(f[2], 0.0);
  // Popular core instance scores above the uniform level.
  EXPECT_GT(f[2], 1.0);
}

TEST_F(FeatureScenario, F4AveragesSubScores) {
  FeatureVector clean = features_->Extract(C(0), E(1));
  FeatureVector drifting = features_->Extract(C(0), E(10));
  FeatureVector no_subs = features_->Extract(C(0), E(3));
  EXPECT_GT(clean[3], drifting[3]);
  EXPECT_EQ(no_subs[3], 0.0);
}

TEST_F(FeatureScenario, FeaturesAreDeterministic) {
  FeatureVector a = features_->Extract(C(0), E(10));
  FeatureVector b = features_->Extract(C(0), E(10));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace semdrift
