#include "scenario/shrink.h"

#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

namespace semdrift {
namespace scenario {

namespace {

/// One shrinkable dimension: a numeric accessor plus its benign anchor and
/// quantization step. The ladder of candidate values is always
/// `benign + n * step` (notch arithmetic), computed the same way on every
/// run, so shrunk values land on exactly reproducible doubles. Booleans are
/// int dimensions with a 0/1 ladder.
struct Dim {
  const char* name;
  bool is_int;
  double benign;
  double step;
  double (*get)(const Scenario&);
  void (*set)(Scenario*, double);
};

/// Fixed dimension order — part of the determinism contract. Benign anchors
/// are the simplest value that keeps a scenario meaningful (zero rates, the
/// pipeline's paper defaults, a small world), so a minimized scenario reads
/// as "defaults plus exactly the knobs the failure needs".
const std::vector<Dim>& Dimensions() {
  static const std::vector<Dim> dims = {
      {"world.num_concepts", true, 4, 4,
       [](const Scenario& s) { return double(s.world.num_concepts); },
       [](Scenario* s, double v) { s->world.num_concepts = int(v); }},
      {"world.min_instances", true, 2, 1,
       [](const Scenario& s) { return double(s.world.min_instances); },
       [](Scenario* s, double v) { s->world.min_instances = int(v); }},
      {"world.max_instances", true, 3, 4,
       [](const Scenario& s) { return double(s.world.max_instances); },
       [](Scenario* s, double v) { s->world.max_instances = int(v); }},
      {"world.popularity_zipf", false, 0.0, 0.1,
       [](const Scenario& s) { return s.world.popularity_zipf; },
       [](Scenario* s, double v) { s->world.popularity_zipf = v; }},
      {"world.polysemy_rate", false, 0.0, 0.05,
       [](const Scenario& s) { return s.world.polysemy_rate; },
       [](Scenario* s, double v) { s->world.polysemy_rate = v; }},
      {"world.similar_twin_rate", false, 0.0, 0.05,
       [](const Scenario& s) { return s.world.similar_twin_rate; },
       [](Scenario* s, double v) { s->world.similar_twin_rate = v; }},
      {"world.twin_overlap", false, 0.3, 0.05,
       [](const Scenario& s) { return s.world.twin_overlap; },
       [](Scenario* s, double v) { s->world.twin_overlap = v; }},
      {"world.min_confusables", true, 0, 1,
       [](const Scenario& s) { return double(s.world.min_confusables); },
       [](Scenario* s, double v) { s->world.min_confusables = int(v); }},
      {"world.max_confusables", true, 1, 1,
       [](const Scenario& s) { return double(s.world.max_confusables); },
       [](Scenario* s, double v) { s->world.max_confusables = int(v); }},
      {"world.verified_fraction", false, 0.0, 0.05,
       [](const Scenario& s) { return s.world.verified_fraction; },
       [](Scenario* s, double v) { s->world.verified_fraction = v; }},
      {"world.morph_variant_rate", false, 0.0, 0.1,
       [](const Scenario& s) { return s.world.morph_variant_rate; },
       [](Scenario* s, double v) { s->world.morph_variant_rate = v; }},
      {"corpus.num_sentences", true, 100, 100,
       [](const Scenario& s) { return double(s.corpus.num_sentences); },
       [](Scenario* s, double v) { s->corpus.num_sentences = int(v); }},
      {"corpus.frac_ambiguous", false, 0.0, 0.05,
       [](const Scenario& s) { return s.corpus.frac_ambiguous; },
       [](Scenario* s, double v) { s->corpus.frac_ambiguous = v; }},
      {"corpus.polyseme_link_prob", false, 0.0, 0.05,
       [](const Scenario& s) { return s.corpus.polyseme_link_prob; },
       [](Scenario* s, double v) { s->corpus.polyseme_link_prob = v; }},
      {"corpus.ambiguous_uniform_prob", false, 0.95, 0.05,
       [](const Scenario& s) { return s.corpus.ambiguous_uniform_prob; },
       [](Scenario* s, double v) { s->corpus.ambiguous_uniform_prob = v; }},
      {"corpus.misparse_rate", false, 0.0, 0.01,
       [](const Scenario& s) { return s.corpus.misparse_rate; },
       [](Scenario* s, double v) { s->corpus.misparse_rate = v; }},
      {"corpus.misparse_late_frac", false, 0.0, 0.1,
       [](const Scenario& s) { return s.corpus.misparse_late_frac; },
       [](Scenario* s, double v) { s->corpus.misparse_late_frac = v; }},
      {"corpus.wrongfact_rate", false, 0.0, 0.01,
       [](const Scenario& s) { return s.corpus.wrongfact_rate; },
       [](Scenario* s, double v) { s->corpus.wrongfact_rate = v; }},
      {"corpus.concept_zipf", false, 0.0, 0.1,
       [](const Scenario& s) { return s.corpus.concept_zipf; },
       [](Scenario* s, double v) { s->corpus.concept_zipf = v; }},
      {"pipeline.max_iterations", true, 1, 1,
       [](const Scenario& s) { return double(s.pipeline.max_iterations); },
       [](Scenario* s, double v) { s->pipeline.max_iterations = int(v); }},
      {"pipeline.max_rounds", true, 0, 1,
       [](const Scenario& s) { return double(s.pipeline.max_rounds); },
       [](Scenario* s, double v) { s->pipeline.max_rounds = int(v); }},
      {"pipeline.mutex_threshold", false, 0.15, 0.05,
       [](const Scenario& s) { return s.pipeline.mutex_threshold; },
       [](Scenario* s, double v) { s->pipeline.mutex_threshold = v; }},
      {"pipeline.similar_threshold", false, 0.5, 0.05,
       [](const Scenario& s) { return s.pipeline.similar_threshold; },
       [](Scenario* s, double v) { s->pipeline.similar_threshold = v; }},
      {"pipeline.min_core_instances", true, 3, 1,
       [](const Scenario& s) { return double(s.pipeline.min_core_instances); },
       [](Scenario* s, double v) { s->pipeline.min_core_instances = int(v); }},
      {"pipeline.frequency_threshold_k", true, 4, 1,
       [](const Scenario& s) { return double(s.pipeline.frequency_threshold_k); },
       [](Scenario* s, double v) { s->pipeline.frequency_threshold_k = int(v); }},
      {"pipeline.eq21_min_average_vote", false, 0.42, 0.02,
       [](const Scenario& s) { return s.pipeline.eq21_min_average_vote; },
       [](Scenario* s, double v) { s->pipeline.eq21_min_average_vote = v; }},
      {"pipeline.eq21_gate_accidental", true, 1, 1,
       [](const Scenario& s) { return s.pipeline.eq21_gate_accidental ? 1.0 : 0.0; },
       [](Scenario* s, double v) { s->pipeline.eq21_gate_accidental = v != 0.0; }},
      {"pipeline.serialize_roundtrip", true, 0, 1,
       [](const Scenario& s) { return s.pipeline.serialize_roundtrip ? 1.0 : 0.0; },
       [](Scenario* s, double v) { s->pipeline.serialize_roundtrip = v != 0.0; }},
      {"faults.rate", false, 0.0, 0.05,
       [](const Scenario& s) { return s.faults.rate; },
       [](Scenario* s, double v) { s->faults.rate = v; }},
      {"faults.transient_attempts", true, 0, 1,
       [](const Scenario& s) { return double(s.faults.transient_attempts); },
       [](Scenario* s, double v) { s->faults.transient_attempts = int(v); }},
      {"faults.max_retries", true, 0, 1,
       [](const Scenario& s) { return double(s.faults.max_retries); },
       [](Scenario* s, double v) { s->faults.max_retries = int(v); }},
  };
  return dims;
}

/// Current position of a dimension in notches above its benign anchor.
/// Values below benign (possible in hand-written scenarios) count as
/// negative notches and shrink upward toward benign the same way.
long NotchesOf(const Dim& dim, const Scenario& s) {
  return std::lround((dim.get(s) - dim.benign) / dim.step);
}

double ValueAtNotch(const Dim& dim, long notch) {
  double v = dim.benign + double(notch) * dim.step;
  if (dim.is_int) v = std::round(v);
  return v;
}

class CachedPredicate {
 public:
  CachedPredicate(const ScenarioPredicate& predicate, size_t max_evaluations)
      : predicate_(predicate), max_evaluations_(max_evaluations) {}

  /// False on cap: a candidate we could not afford to evaluate is treated
  /// as not reproducing, so it is never committed.
  bool Holds(const Scenario& s) {
    const std::string key = ScenarioToToml(s);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    if (evaluations_ >= max_evaluations_) {
      capped_ = true;
      return false;
    }
    ++evaluations_;
    bool holds = predicate_(s);
    cache_.emplace(key, holds);
    return holds;
  }

  size_t evaluations() const { return evaluations_; }
  bool capped() const { return capped_; }

 private:
  const ScenarioPredicate& predicate_;
  size_t max_evaluations_;
  size_t evaluations_ = 0;
  bool capped_ = false;
  std::unordered_map<std::string, bool> cache_;
};

/// Tries `notch` for `dim`; commits into *s when the candidate is valid and
/// the failure still reproduces.
bool TryNotch(const Dim& dim, long notch, Scenario* s, CachedPredicate* pred) {
  Scenario candidate = *s;
  dim.set(&candidate, ValueAtNotch(dim, notch));
  if (!ValidateScenario(candidate).ok()) return false;
  if (!pred->Holds(candidate)) return false;
  *s = candidate;
  return true;
}

/// Walks one dimension as far toward benign as the predicate allows:
/// jump-to-benign and halving for speed, then single notches. The loop only
/// exits once the one-notch move fails (or notch 0 is reached), which is
/// the per-dimension minimality certificate.
bool ShrinkDim(const Dim& dim, Scenario* s, CachedPredicate* pred) {
  bool changed = false;
  while (true) {
    long n = NotchesOf(dim, *s);
    if (n == 0) break;
    long toward = n > 0 ? 1 : -1;
    // Candidates ordered most-aggressive first; duplicates collapse when n
    // is small.
    long candidates[3] = {0, n / 2, n - toward};
    bool moved = false;
    for (long cand : candidates) {
      if (cand == n) continue;
      if (std::abs(cand) > std::abs(n)) continue;
      if (TryNotch(dim, cand, s, pred)) {
        moved = true;
        changed = true;
        break;
      }
    }
    if (!moved) break;
  }
  return changed;
}

/// With the fault overlay shrunk inert (rate 0), its remaining fields are
/// noise in the minimized file — clear them when behavior is unchanged.
bool SimplifyInertFaults(Scenario* s, CachedPredicate* pred) {
  if (s->faults.rate != 0.0) return false;
  if (s->faults.kinds.empty() && s->faults.stages.empty() &&
      s->faults.seed == 0) {
    return false;
  }
  Scenario candidate = *s;
  candidate.faults.kinds.clear();
  candidate.faults.stages.clear();
  candidate.faults.seed = 0;
  if (!ValidateScenario(candidate).ok()) return false;
  if (!pred->Holds(candidate)) return false;
  *s = candidate;
  return true;
}

}  // namespace

Result<ShrinkResult> ShrinkScenario(const Scenario& failing,
                                    const ScenarioPredicate& predicate,
                                    const ShrinkOptions& options) {
  if (Status st = ValidateScenario(failing); !st.ok()) return st;
  CachedPredicate pred(predicate, options.max_evaluations);
  if (!pred.Holds(failing)) {
    return Status::InvalidArgument(
        "shrink: predicate does not hold on the input scenario");
  }

  ShrinkResult result;
  result.scenario = failing;
  // Dimensions interact (a smaller world can unlock a smaller corpus), so
  // sweep until a whole pass commits nothing.
  while (true) {
    ++result.passes;
    bool changed = false;
    for (const Dim& dim : Dimensions()) {
      if (ShrinkDim(dim, &result.scenario, &pred)) changed = true;
      if (pred.capped()) break;
    }
    if (SimplifyInertFaults(&result.scenario, &pred)) changed = true;
    if (!changed || pred.capped()) break;
  }
  result.evaluations = pred.evaluations();
  result.reached_eval_cap = pred.capped();
  return result;
}

}  // namespace scenario
}  // namespace semdrift
