file(REMOVE_RECURSE
  "CMakeFiles/dp_cleaner_test.dir/dp_cleaner_test.cc.o"
  "CMakeFiles/dp_cleaner_test.dir/dp_cleaner_test.cc.o.d"
  "dp_cleaner_test"
  "dp_cleaner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_cleaner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
