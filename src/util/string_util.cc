#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace semdrift {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatCount(int64_t v) {
  bool neg = v < 0;
  uint64_t mag = neg ? static_cast<uint64_t>(-(v + 1)) + 1 : static_cast<uint64_t>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

namespace {

/// Copies into a NUL-terminated buffer for the strto* family and rejects
/// embedded NULs (strto* would silently stop at them). Returns false for
/// input too long to be a sane number.
bool CopyForStrto(std::string_view s, char* buf, size_t buf_size) {
  if (s.empty() || s.size() >= buf_size) return false;
  if (s.find('\0') != std::string_view::npos) return false;
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  return true;
}

}  // namespace

bool ParseDouble(std::string_view s, double* out) {
  char buf[64];
  if (!CopyForStrto(s, buf, sizeof(buf))) return false;
  if (std::isspace(static_cast<unsigned char>(buf[0]))) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf, &end);
  if (end != buf + s.size() || errno == ERANGE || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  char buf[32];
  if (!CopyForStrto(s, buf, sizeof(buf))) return false;
  if (std::isspace(static_cast<unsigned char>(buf[0]))) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf, &end, 10);
  if (end != buf + s.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  char buf[32];
  if (!CopyForStrto(s, buf, sizeof(buf))) return false;
  // strtoull accepts a leading '-' and wraps; forbid it explicitly.
  if (buf[0] == '-' || std::isspace(static_cast<unsigned char>(buf[0]))) return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(buf, &end, 10);
  if (end != buf + s.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseIntInRange(std::string_view s, int64_t lo, int64_t hi, int64_t* out) {
  int64_t v = 0;
  if (!ParseInt64(s, &v) || v < lo || v > hi) return false;
  *out = v;
  return true;
}

}  // namespace semdrift
